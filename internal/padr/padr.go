// Package padr implements the paper's core contribution: the Configuration
// and Scheduling Algorithm (CSA) for oriented well-nested communication sets
// on the circuit switched tree, under the Power-Aware Dynamic
// Reconfiguration (PADR) technique (paper §3).
//
// Phase 1 floats constant-size control words up the tree: every PE reports
// [1,0] (source), [0,1] (destination) or [0,0]; every switch matches left
// sources against right destinations (Lemma 1 makes count-only matching
// sound) and stores C_S = [M, S_L−M, D_L, S_R, D_R−M].
//
// Phase 2 repeats for w rounds (w = the set's link width): control words
// flow down from the root telling every switch which halves of its parent
// link are in use this round and which pending leaf (x-th leftmost pending
// source / x-th rightmost pending destination, Definition 2) to hook up.
// Every switch always extends the *outermost* still-pending communication it
// is responsible for, which is what pins its total reconfiguration cost to
// O(1) (Lemmas 6–7, Theorem 8).
//
// The engine is a faithful sequential execution of the distributed
// algorithm: every decision at a switch uses only that switch's stored
// C_S word and the one control word received from its parent. Package sim
// re-runs the identical per-switch logic with one goroutine per node and
// channels for links, and must produce identical results.
package padr

import (
	"fmt"
	"time"

	"cst/internal/comm"
	"cst/internal/ctrl"
	"cst/internal/fault"
	"cst/internal/obs"
	"cst/internal/power"
	"cst/internal/sched"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// MaxRoundsSlack bounds the scheduling loop at width + MaxRoundsSlack
// rounds; exceeding it means the engine lost a communication and is
// reported as an error rather than an infinite loop.
const MaxRoundsSlack = 2

// Observer receives optional callbacks during a run; any field may be nil.
type Observer struct {
	// RoundStart fires before each Phase 2 round, 0-based.
	RoundStart func(round int)
	// WordSent fires for every Phase 2 control word sent from a switch to a
	// child (switch or PE).
	WordSent func(parent, child topology.Node, w ctrl.Down)
	// Configured fires after a switch establishes this round's connections.
	Configured func(u topology.Node, cfg xbar.Config)
	// RoundDone fires after each round with the communications performed.
	RoundDone func(round int, performed []comm.Comm)
}

// Option configures an Engine.
type Option func(*Engine)

// WithMode selects the power accounting mode. The default is
// power.Stateful (hold configurations across rounds; the PADR design
// point). power.Stateless tears every switch down each round — an ablation
// that reproduces the Θ(w)-units behaviour the paper attributes to
// round-by-round reconfiguration.
func WithMode(m power.Mode) Option {
	return func(e *Engine) { e.mode = m }
}

// WithObserver attaches trace callbacks.
func WithObserver(o Observer) Option {
	return func(e *Engine) { e.obs = o }
}

// Selection chooses when a switch starts its own matched pairs. The two
// rules expose a genuine tension in the paper (see DESIGN.md §6 and
// experiment E12): Greedy reproduces Theorem 5 exactly (always w rounds)
// but its per-switch change count grows slowly (≈ log N) on adversarial
// random well-nested sets; Conservative restores the strict Lemma 7
// sequence structure (O(1) changes on every input) but can need a few
// rounds beyond the width.
type Selection int

const (
	// Greedy (the default) is the literal Fig. 5 pseudocode: on a
	// [null,null] round a switch with matched pairs always starts one,
	// even while outer communications that will need the same ports are
	// pending. Time-optimal (Theorem 5 holds exactly); on the paper's
	// chain workloads also power-optimal with at most 2 changes per
	// switch.
	Greedy Selection = iota
	// Conservative starts a matched pair only when no outer communication
	// that needs the same switch ports (a left up-pass on l_i, a right
	// down-pass on r_o) is still pending — the paper's prose: "satisfy all
	// sources from its left subtree, then change configuration". This
	// keeps every port's demand sequence contiguous (Lemma 7's Q1/Q2
	// shape, hence O(1) changes per switch on every input) but may
	// schedule in more than w rounds.
	Conservative
)

// String names the selection rule.
func (s Selection) String() string {
	if s == Conservative {
		return "conservative"
	}
	return "greedy"
}

// WithSelection picks the matched-pair selection rule.
func WithSelection(s Selection) Option {
	return func(e *Engine) { e.sel = s }
}

// WithCrossbars makes the engine drive the caller's switches instead of
// fresh ones. Power meters on them keep accumulating, which is how a
// sequence of communication sets (e.g. successive segmentable-bus cycles)
// is billed across runs: configurations held from a previous run stay free.
// The map must contain one switch per internal node.
func WithCrossbars(switches map[topology.Node]*xbar.Switch) Option {
	return func(e *Engine) {
		for n, sw := range switches {
			if sw != nil && int(n) < len(e.switches) {
				e.switches[n] = sw
			}
		}
		e.ownXbars = false
	}
}

// WithSharedCrossbars is WithCrossbars for callers that already keep their
// switches in a dense slice indexed by node (len >= Switches()+1 with a
// non-nil entry per internal node; entry 0 unused). The slice is adopted by
// reference — no per-entry copying — which makes it the cheap option for
// pooled engines that swap crossbar views every dispatch.
func WithSharedCrossbars(switches []*xbar.Switch) Option {
	return func(e *Engine) {
		e.switches = switches
		e.ownXbars = false
	}
}

// WithReflectedCrossbars is WithCrossbars for a *mirrored* run: the engine
// schedules a mirrored (originally left-oriented) set, and every connection
// is applied to the reflected physical switch with left and right swapped.
// This bills a left-oriented pass to the same physical crossbars as the
// right-oriented pass, with physically correct attribution. Do not combine
// with the data-plane recorder: the recorded configurations are in physical
// coordinates while the schedule is in mirrored coordinates.
func WithReflectedCrossbars(switches map[topology.Node]*xbar.Switch) Option {
	return func(e *Engine) {
		WithCrossbars(switches)(e)
		e.reflected = true
	}
}

// WithReflection toggles the mirrored-run adapter independently of the
// crossbar source, so a pooled engine can flip orientation between Reset
// calls without re-copying its switches.
func WithReflection(on bool) Option {
	return func(e *Engine) { e.reflected = on }
}

// WithFaults arms deterministic fault injection: the engine consults in
// before every control-word exchange and either dies with a typed
// *fault.Error at the exact link/switch/round, or lets a silently corrupted
// word propagate until validation or the round-level pairing checks catch
// the inconsistency — in which case the failure is still wrapped typed,
// because the injector recorded that it fired this run. The sequential
// engine observes every fault synchronously (it cannot stall), and ignores
// DelayWord, which is a timing fault only the concurrent fabric feels.
// Injection disables Phase 2 subtree pruning so every link the physical
// fabric would traverse is actually exercised. A nil injector is inert.
func WithFaults(in *fault.Injector) Option {
	return func(e *Engine) { e.inj = in }
}

// Engine runs CSA on one communication set. Each run is one-shot, but the
// engine itself is reusable: Reset re-arms every internal arena for a new
// set on the same tree without reallocating, so pooled engines run
// allocation-free in steady state.
//
// All per-node state lives in flat slices indexed directly by
// topology.Node — the heap numbering is already dense (switches occupy
// 1..N-1, entry 0 unused), so a node IS its arena index and every hot-path
// map lookup of the original implementation becomes a bounds-checked load.
type Engine struct {
	tree      *topology.Tree
	set       *comm.Set
	mode      power.Mode
	obs       Observer
	sel       Selection
	reflected bool
	inj       *fault.Injector // nil = no fault injection

	// observability (all optional; nil means uninstrumented)
	reg        *obs.Registry
	tracer     *obs.Tracer
	span       obs.SpanContext // request span this run belongs to (zero = none)
	met        engineMetrics
	instr      bool // reg or tracer attached: take timestamps
	runStart   time.Time
	roundStart time.Time
	curRound   int // round being dispatched, -1 outside Phase 2
	unitsBase  int // cumulative meter baselines at prepare, for
	altBase    int // delta attribution on shared crossbars

	// Arenas indexed by topology.Node, len = tree.Leaves() (internal nodes
	// are 1..Leaves()-1; entry 0 unused).
	stored     []ctrl.Stored  // per-switch C_S state
	matchedSub []int          // sum of stored[v].M over v in subtree(u)
	switches   []*xbar.Switch // per-switch crossbar
	ownXbars   bool           // engine created the switches (Reset may Zero them)

	// Arenas indexed by PE number, len = set.N.
	dstOf    []int     // source PE -> destination PE, -1 if not a source
	leafRole []ctrl.Up // what each PE reports in Step 1.1
	leafDone []bool
	commPos  []int32 // source PE -> index in set.Comms, -1 if not a source

	// Delta-scheduling state (see delta.go). p1Stored/p1MatchedSub are the
	// pristine post-Phase-1 snapshot for the current set — the state Phase 2
	// consumes — kept across runs so Apply can recompute matches only along
	// dirty root paths and rebuild the live arrays with two memcopies.
	// widthScratch doubles as the persistent per-edge load table; loadHist
	// and curWidth maintain the set's width incrementally between full
	// WidthInto computations.
	p1Stored     []ctrl.Stored
	p1MatchedSub []int
	loadHist     []int // loadHist[v] = directed edges currently carrying v circuits
	curWidth     int   // max over widthScratch, maintained incrementally
	histDirty    bool  // loadHist/curWidth stale; rebuilt on the next Apply
	deltaOK      bool  // the engine holds a complete post-run state Apply can mutate
	dirtyMark    []int // epoch stamps over switch nodes, len = leaves
	dirtyEpoch   int
	dirtyList    []topology.Node

	ran       bool
	remaining int  // communications not yet performed
	prune     bool // active-path pruning enabled this run (no word observers)

	// per-round scratch
	roundSrcs    []int
	roundDsts    []bool // indexed by PE; entries listed in roundDstList
	roundDstList []int
	nestStack    []int // arm's well-nestedness scan stack, reused

	// commArena backs every round's performed slice for one run: rounds
	// partition the set, so set.Len() entries suffice for the whole run.
	commArena []comm.Comm
	commUsed  int

	// reusable scratch for Width and the wire-size encoders
	widthScratch []int
	encBuf       [ctrl.StoredWordBytes]byte

	// lightPrep backs RunRounds' prepared state so the rounds-only path
	// allocates nothing on a warm engine.
	lightPrep prepared

	// stats
	upWords    int
	downWords  int
	upBytes    int
	downBytes  int
	activeDown int
}

// Result is the outcome of a run.
type Result struct {
	// Schedule lists the communications performed per round; it has been
	// produced purely from which PEs were signalled, then checked against
	// the ground-truth pairing (Theorem 4).
	Schedule *sched.Schedule
	// Report is the power ledger (Theorem 8's subject).
	Report *power.Report
	// Width is the set's link width; Rounds == Width on success (Theorem 5).
	Width int
	// Rounds is the number of Phase 2 rounds executed.
	Rounds int
	// InitialStored is a snapshot of every switch's C_S after Phase 1,
	// indexed by node (entries 0 and >= Switches()+1 unused).
	InitialStored []ctrl.Stored
	// UpWords / DownWords count control words sent in Phase 1 / Phase 2.
	UpWords, DownWords int
	// UpBytes / DownBytes are the encoded sizes of those words.
	UpBytes, DownBytes int
	// ActiveDownWords counts Phase 2 words other than [null,null].
	ActiveDownWords int
	// MaxStoredBytes is the encoded size of the largest per-switch state —
	// constant by Theorem 5.
	MaxStoredBytes int
}

// New builds an engine for the given tree and set. The set must validate,
// be right oriented and well nested, and match the tree's leaf count.
func New(t *topology.Tree, s *comm.Set, opts ...Option) (*Engine, error) {
	n := t.Leaves()
	e := &Engine{
		tree:       t,
		stored:     make([]ctrl.Stored, n),
		matchedSub: make([]int, n),
		switches:   make([]*xbar.Switch, n),
		ownXbars:   true,
		dstOf:      make([]int, n),
		leafRole:   make([]ctrl.Up, n),
		leafDone:   make([]bool, n),
		commPos:    make([]int32, n),
		roundDsts:  make([]bool, n),
	}
	t.EachSwitch(func(u topology.Node) { e.switches[u] = xbar.NewSwitch() })
	if err := e.arm(s); err != nil {
		return nil, err
	}
	for _, o := range opts {
		o(e)
	}
	e.met = newEngineMetrics(e.reg)
	e.instr = e.reg != nil || e.tracer != nil
	e.curRound = -1
	return e, nil
}

// arm validates s and loads it into the engine's reusable arenas.
func (e *Engine) arm(s *comm.Set) error {
	if e.tree.Leaves() != s.N {
		return fmt.Errorf("padr: tree has %d leaves, set has N=%d", e.tree.Leaves(), s.N)
	}
	// Validate inline over the engine's PE arenas instead of through
	// Set.Validate/IsWellNested, whose per-call maps and role slices would
	// be the only allocations left on the Reset path.
	e.deltaOK = false
	for pe := range e.dstOf {
		e.dstOf[pe] = -1
		e.leafRole[pe] = ctrl.Up{}
		e.leafDone[pe] = false
		e.commPos[pe] = -1
	}
	for i, c := range s.Comms {
		if c.Src < 0 || c.Src >= s.N || c.Dst < 0 || c.Dst >= s.N {
			return fmt.Errorf("padr: %s out of range for N=%d", c, s.N)
		}
		if c.Src == c.Dst {
			return fmt.Errorf("padr: self loop at PE %d", c.Src)
		}
		if !c.RightOriented() {
			return fmt.Errorf("padr: set is not an oriented well-nested set: %s", s.String())
		}
		if e.leafRole[c.Src] != (ctrl.Up{}) {
			return fmt.Errorf("padr: PE %d appears in two communications", c.Src)
		}
		e.leafRole[c.Src] = ctrl.Up{S: 1}
		if e.leafRole[c.Dst] != (ctrl.Up{}) {
			return fmt.Errorf("padr: PE %d appears in two communications", c.Dst)
		}
		e.leafRole[c.Dst] = ctrl.Up{D: 1}
		e.dstOf[c.Src] = c.Dst
		e.commPos[c.Src] = int32(i)
	}
	if !e.scanNested() {
		return fmt.Errorf("padr: set is not an oriented well-nested set: %s", s.String())
	}
	if e.set == nil {
		e.set = &comm.Set{N: s.N}
	}
	e.set.N = s.N
	e.set.Comms = append(e.set.Comms[:0], s.Comms...)
	e.remaining = len(e.set.Comms)
	if cap(e.commArena) < len(e.set.Comms) {
		e.commArena = make([]comm.Comm, len(e.set.Comms))
	}
	e.commArena = e.commArena[:cap(e.commArena)]
	e.commUsed = 0
	return nil
}

// scanNested checks that the set currently loaded into the PE arenas is
// oriented well-nested: scan the PE line keeping a stack of open
// destinations; every destination must close the innermost open span.
func (e *Engine) scanNested() bool {
	stack := e.nestStack[:0]
	for pe := 0; pe < len(e.leafRole); pe++ {
		switch {
		case e.leafRole[pe].S == 1:
			stack = append(stack, e.dstOf[pe])
		case e.leafRole[pe].D == 1:
			if len(stack) == 0 || stack[len(stack)-1] != pe {
				e.nestStack = stack[:0]
				return false
			}
			stack = stack[:len(stack)-1]
		}
	}
	e.nestStack = stack[:0]
	return true
}

// Reset re-arms the engine for a new communication set on the same tree,
// reusing every arena, so a pooled engine schedules run after run without
// reallocating. Engine-owned crossbars are returned to factory state
// (configuration and meters), making a Reset engine observationally
// identical to a fresh New one; caller-provided crossbars (WithCrossbars /
// WithSharedCrossbars) are left untouched so cross-run billing keeps
// accumulating exactly as it would across fresh engines sharing them.
// Options passed here are applied on top of the engine's existing ones.
func (e *Engine) Reset(s *comm.Set, opts ...Option) error {
	if err := e.arm(s); err != nil {
		return err
	}
	for u := range e.stored {
		e.stored[u] = ctrl.Stored{}
		e.matchedSub[u] = 0
	}
	if e.ownXbars {
		for _, sw := range e.switches {
			if sw != nil {
				sw.Zero()
			}
		}
	}
	e.ran = false
	e.curRound = -1
	e.upWords, e.downWords, e.upBytes, e.downBytes, e.activeDown = 0, 0, 0, 0, 0
	e.roundSrcs = e.roundSrcs[:0]
	for _, pe := range e.roundDstList {
		e.roundDsts[pe] = false
	}
	e.roundDstList = e.roundDstList[:0]
	for _, o := range opts {
		o(e)
	}
	e.met = newEngineMetrics(e.reg)
	e.instr = e.reg != nil || e.tracer != nil
	return nil
}

// SetSpanContext attributes the engine's next run to a request trace: run
// events carry the trace id and a "padr.run" span is emitted when the run
// completes. The context is consumed by the run (cleared afterwards) so a
// Reset engine never mis-attributes a later run. Zero or unsampled
// contexts are inert. Not safe for concurrent use with a running engine.
func (e *Engine) SetSpanContext(ctx obs.SpanContext) { e.span = ctx }

// traceID is the hex trace id for event stamping ("" when untraced).
func (e *Engine) traceID() string {
	if !e.span.Valid() {
		return ""
	}
	return e.span.Trace.String()
}

// emitRunSpan closes out the "padr.run" span for a traced run and consumes
// the span context.
func (e *Engine) emitRunSpan(rounds int, errmsg string) {
	if e.tracer == nil || !e.span.Valid() {
		return
	}
	e.tracer.EmitSpan(obs.SpanRecord{
		Trace: e.span.Trace, Span: e.tracer.NewSpanID(), Parent: e.span.Span,
		Name: "padr.run", Engine: "padr",
		Start: e.runStart, End: time.Now(), N: rounds, Err: errmsg,
	})
	e.span = obs.SpanContext{}
}

// prepared holds the state computed by prepare (Phase 1 plus validation).
type prepared struct {
	width     int
	maxRounds int
	initial   []ctrl.Stored
	maxStored int
	schedule  *sched.Schedule
	round     int
}

// prepare runs Phase 1, snapshots the stored words and validates the root.
func (e *Engine) prepare() (*prepared, error) {
	p := new(prepared)
	if err := e.prepareInto(p, false); err != nil {
		return nil, err
	}
	return p, nil
}

// prepareInto is prepare with caller-owned state. In light mode the
// result-only artifacts — the initial-state snapshot and the schedule with
// its cloned set — are skipped, which together with a caller-pooled p
// makes the whole prepare allocation-free on a warm engine (RunRounds'
// contract).
func (e *Engine) prepareInto(p *prepared, light bool) error {
	if e.ran {
		return e.fail(fmt.Errorf("padr: engine is single-use; create a new one"))
	}
	e.ran = true
	e.deltaOK = false
	e.met.runs.Inc()
	e.met.comms.Add(int64(e.set.Len()))
	e.met.switches.Add(int64(e.tree.Switches()))
	if e.instr {
		e.runStart = time.Now()
		e.unitsBase, e.altBase = e.meterTotals()
	}
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{Type: "run.start", Engine: "padr", Round: -1, N: e.set.Len(), Mode: e.mode.String(), Trace: e.traceID()})
	}
	e.inj.BeginRun()
	// Pruning skips per-word and per-switch callbacks inside inert
	// subtrees, so it must stay off whenever anyone watches those events —
	// and whenever faults are armed, since a pruned walk would skip the
	// very links the plan targets.
	e.prune = e.obs.WordSent == nil && e.obs.Configured == nil && e.tracer == nil && e.inj == nil

	if e.widthScratch == nil {
		e.widthScratch = make([]int, e.tree.DirectedEdgeCount())
	}
	width, err := e.set.WidthInto(e.tree, e.widthScratch)
	if err != nil {
		return e.fail(err)
	}
	e.met.width.Set(int64(width))

	if err := e.phase1(); err != nil {
		return e.fail(err)
	}
	e.met.upWords.Add(int64(e.upWords))
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{
			Type: "phase1.done", Engine: "padr", Round: -1,
			N: e.upWords, DurNS: time.Since(e.runStart).Nanoseconds(), Width: width,
		})
	}

	var initial []ctrl.Stored
	if !light {
		initial = make([]ctrl.Stored, len(e.stored))
		copy(initial, e.stored)
	}
	maxStored := 0
	for u := 1; u < len(e.stored); u++ {
		sz, err := ctrl.EncodeStoredInto(e.encBuf[:], e.stored[u])
		if err != nil {
			return e.fail(fmt.Errorf("padr: switch %d state not encodable: %v", u, err))
		}
		if sz > maxStored {
			maxStored = sz
		}
	}
	// Sanity: after matching, nothing may remain unmatched at the root.
	if up := e.stored[e.tree.Root()].UpWord(); up.S != 0 || up.D != 0 {
		return e.fail(fmt.Errorf("padr: root still advertises %s upward; set is not schedulable", up))
	}
	// Retain the pristine post-Phase-1 state for delta scheduling: Phase 2
	// will drain stored/matchedSub in place, but Apply restores them from
	// this snapshot after patching only the dirty root paths.
	e.snapshotPhase1()

	maxRounds := width + MaxRoundsSlack
	if e.sel == Conservative {
		// The conservative rule may run past the width; bound the loop by
		// the trivial one-communication-per-round schedule instead.
		maxRounds = e.set.Len() + MaxRoundsSlack
	}
	p.width = width
	p.maxRounds = maxRounds
	p.initial = initial
	p.maxStored = maxStored
	p.round = 0
	if !light {
		// The schedule gets its own copy of the set: e.set is an arena that
		// the next Reset overwrites, while results must stay immutable.
		p.schedule = &sched.Schedule{Set: e.set.Clone()}
	} else {
		p.schedule = nil
	}
	return nil
}

// step executes one Phase 2 round against prepared state; done reports
// whether all communications have been performed (in which case no round
// ran).
func (e *Engine) step(p *prepared) (performed []comm.Comm, done bool, err error) {
	if !e.pendingWork() {
		return nil, true, nil
	}
	if p.round >= p.maxRounds {
		return nil, false, e.fail(fmt.Errorf("padr: exceeded %d rounds for a width-%d set; pending work remains", p.round, p.width))
	}
	e.curRound = p.round
	if e.instr {
		e.roundStart = time.Now()
	}
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{Type: "round.start", Engine: "padr", Round: p.round})
	}
	if e.obs.RoundStart != nil {
		e.obs.RoundStart(p.round)
	}
	if e.mode == power.Stateless {
		for _, sw := range e.switches {
			if sw != nil {
				sw.Reset()
			}
		}
	}
	performed, err = e.round()
	if err != nil {
		return nil, false, e.fail(fmt.Errorf("padr: round %d: %w", p.round, err))
	}
	if len(performed) == 0 {
		return nil, false, e.fail(fmt.Errorf("padr: round %d made no progress but work remains", p.round))
	}
	e.remaining -= len(performed)
	if p.schedule != nil {
		p.schedule.Rounds = append(p.schedule.Rounds, performed)
	}
	e.met.rounds.Inc()
	if e.instr {
		d := time.Since(e.roundStart)
		e.met.roundLatency.ObserveDuration(d)
		if e.tracer != nil {
			e.tracer.Emit(obs.Event{
				Type: "round.done", Engine: "padr", Round: p.round,
				N: len(performed), DurNS: d.Nanoseconds(),
			})
		}
	}
	if e.obs.RoundDone != nil {
		e.obs.RoundDone(p.round, performed)
	}
	p.round++
	e.curRound = -1
	return performed, false, nil
}

// finalize validates the completed schedule and assembles the result.
func (e *Engine) finalize(p *prepared) (*Result, error) {
	rounds := p.schedule.NumRounds()
	if e.sel == Greedy && rounds != p.width {
		return nil, e.fail(fmt.Errorf("padr: took %d rounds for a width-%d set (Theorem 5 violated)", rounds, p.width))
	}
	if e.instr {
		// Diff the cumulative switch meters against the prepare-time
		// baseline so shared crossbars (WithCrossbars) bill only this run.
		units, alts := e.meterTotals()
		e.met.units.Add(int64(units - e.unitsBase))
		e.met.alternations.Add(int64(alts - e.altBase))
		e.met.runLatency.ObserveDuration(time.Since(e.runStart))
		if e.tracer != nil {
			e.tracer.Emit(obs.Event{
				Type: "run.done", Engine: "padr", Round: -1,
				N: rounds, DurNS: time.Since(e.runStart).Nanoseconds(), Width: p.width,
				Trace: e.traceID(),
			})
		}
		e.emitRunSpan(rounds, "")
	}
	e.deltaOK = true
	return &Result{
		Schedule:        p.schedule,
		Report:          power.CollectSlice(e.algorithmName(), e.mode, rounds, e.tree, e.switches),
		Width:           p.width,
		Rounds:          rounds,
		InitialStored:   p.initial,
		UpWords:         e.upWords,
		DownWords:       e.downWords,
		UpBytes:         e.upBytes,
		DownBytes:       e.downBytes,
		ActiveDownWords: e.activeDown,
		MaxStoredBytes:  p.maxStored,
	}, nil
}

// Run executes Phase 1 once and Phase 2 until every communication has been
// performed, then returns the schedule, power report and statistics.
func (e *Engine) Run() (*Result, error) {
	p, err := e.prepare()
	if err != nil {
		return nil, err
	}
	for {
		_, done, err := e.step(p)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return e.finalize(p)
}

// RunRounds executes the schedule like Run but returns only the round
// count, skipping every result-only artifact: no initial-state snapshot,
// no schedule (and set clone), no power report. Theorem 5 validation and
// instrumented meter billing still happen, and shared crossbars' meters
// accumulate identically. On a warm (Reset) engine the whole prepare →
// rounds → validate cycle is allocation-free, which is what lets the
// online dispatcher — and the wire serving path above it — run whole
// batches without a single allocation. Callers that need the schedule or
// the per-run power report use Run.
func (e *Engine) RunRounds() (int, error) {
	p := &e.lightPrep
	*p = prepared{}
	if err := e.prepareInto(p, true); err != nil {
		return 0, err
	}
	return e.finishLight(p)
}

// finishLight drives Phase 2 to completion for a light (rounds-only) run,
// validates Theorem 5 and settles instrumented billing. Shared by RunRounds
// and ApplyRounds (delta.go).
func (e *Engine) finishLight(p *prepared) (int, error) {
	for {
		_, done, err := e.step(p)
		if err != nil {
			return 0, err
		}
		if done {
			break
		}
	}
	rounds := p.round
	if e.sel == Greedy && rounds != p.width {
		return 0, e.fail(fmt.Errorf("padr: took %d rounds for a width-%d set (Theorem 5 violated)", rounds, p.width))
	}
	if e.instr {
		units, alts := e.meterTotals()
		e.met.units.Add(int64(units - e.unitsBase))
		e.met.alternations.Add(int64(alts - e.altBase))
		e.met.runLatency.ObserveDuration(time.Since(e.runStart))
		if e.tracer != nil {
			e.tracer.Emit(obs.Event{
				Type: "run.done", Engine: "padr", Round: -1,
				N: rounds, DurNS: time.Since(e.runStart).Nanoseconds(), Width: p.width,
				Trace: e.traceID(),
			})
		}
		e.emitRunSpan(rounds, "")
	}
	e.deltaOK = true
	return rounds, nil
}

// Stepper drives Phase 2 one round at a time — for embedding the scheduler
// in an external simulation loop. Build with NewStepper, call Next until
// done, then Result.
type Stepper struct {
	e   *Engine
	p   *prepared
	res *Result
}

// NewStepper builds an engine and runs Phase 1 immediately.
func NewStepper(t *topology.Tree, s *comm.Set, opts ...Option) (*Stepper, error) {
	e, err := New(t, s, opts...)
	if err != nil {
		return nil, err
	}
	p, err := e.prepare()
	if err != nil {
		return nil, err
	}
	return &Stepper{e: e, p: p}, nil
}

// Width returns the set's link width (the target round count).
func (st *Stepper) Width() int { return st.p.width }

// Round returns the number of rounds executed so far.
func (st *Stepper) Round() int { return st.p.round }

// Next executes one round. done=true means all communications were already
// performed and no round ran.
func (st *Stepper) Next() (performed []comm.Comm, done bool, err error) {
	if st.res != nil {
		return nil, true, nil
	}
	return st.e.step(st.p)
}

// Result finishes any remaining rounds and returns the final result. It is
// idempotent.
func (st *Stepper) Result() (*Result, error) {
	if st.res != nil {
		return st.res, nil
	}
	for {
		_, done, err := st.e.step(st.p)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	res, err := st.e.finalize(st.p)
	if err != nil {
		return nil, err
	}
	st.res = res
	return res, nil
}

// algorithmName labels power reports: "padr" for the default rule, since
// Greedy is the literal paper algorithm, and "padr-conservative" otherwise.
func (e *Engine) algorithmName() string {
	if e.sel == Conservative {
		return "padr-conservative"
	}
	return "padr"
}

// phase1 distributes control information up the tree (Steps 1.1–1.3) and
// builds the matchedSub index that Phase 2's active-path pruning reads:
// matchedSub[u] is the number of still-unscheduled matched pairs anywhere in
// subtree(u). Bottom-up order guarantees both children's totals exist when a
// switch is visited, so each entry is computed (not accumulated) and a
// repeated phase1 on the same engine stays idempotent.
func (e *Engine) phase1() error {
	var ferr error
	e.tree.EachSwitchBottomUp(func(u topology.Node) {
		if ferr != nil {
			return
		}
		lc, rc := e.tree.Left(u), e.tree.Right(u)
		left, err := e.upWordFrom(lc)
		if err != nil {
			ferr = err
			return
		}
		right, err := e.upWordFrom(rc)
		if err != nil {
			ferr = err
			return
		}
		st := ctrl.Match(left, right)
		e.stored[u] = st
		m := st.M
		if e.tree.IsSwitch(lc) {
			m += e.matchedSub[lc]
		}
		if e.tree.IsSwitch(rc) {
			m += e.matchedSub[rc]
		}
		e.matchedSub[u] = m
	})
	return ferr
}

// upWordFrom returns the C_U word the given child sends its parent,
// counting the message and its encoded size. Under fault injection the link
// may lose or mutate the word; the word is then validated against the
// child's subtree (a C_U advertising more endpoints than the subtree has
// PEs is physically impossible), so link-local corruption dies here with a
// typed error instead of poisoning the matching above.
func (e *Engine) upWordFrom(child topology.Node) (ctrl.Up, error) {
	return e.upWordFromState(e.stored, child)
}

// upWordFromState is upWordFrom reading an explicit stored-word arena, so
// the delta path (delta.go) can recompute matches against the pristine
// Phase-1 snapshot with the identical fault-injection and accounting
// behaviour.
func (e *Engine) upWordFromState(stored []ctrl.Stored, child topology.Node) (ctrl.Up, error) {
	var up ctrl.Up
	if e.tree.IsLeaf(child) {
		up = e.leafRole[e.tree.PE(child)]
	} else {
		up = stored[child].UpWord()
	}
	if e.inj != nil {
		if e.inj.WordLost(child, fault.Phase1) {
			kind := fault.ErrWordLost
			if e.inj.LinkDownAt(child, fault.Phase1) {
				kind = fault.ErrLinkDown
			}
			return ctrl.Up{}, &fault.Error{Engine: "padr", Round: fault.Phase1, Node: child, Kind: kind,
				Detail: fmt.Errorf("convergecast word from node %d never arrived", child)}
		}
		up, _ = e.inj.CorruptUp(child, up)
		leaves := (e.tree.SubtreeNodes(child) + 1) / 2
		if up.S < 0 || up.D < 0 || up.S+up.D > leaves {
			return ctrl.Up{}, &fault.Error{Engine: "padr", Round: fault.Phase1, Node: child, Kind: fault.ErrCorruptWord,
				Detail: fmt.Errorf("up word %s impossible for a %d-leaf subtree", up, leaves)}
		}
	}
	e.upWords++
	if sz, err := ctrl.EncodeUpInto(e.encBuf[:], up); err == nil {
		e.upBytes += sz
	}
	return up, nil
}

// pendingWork reports whether any communication remains unperformed. The
// remaining counter is maintained by step, replacing the original O(N)
// sweep over every switch and PE.
func (e *Engine) pendingWork() bool { return e.remaining > 0 }

// round executes one Phase 2 round: words flow top-down from the root
// (which behaves as if it received [null,null]), every switch configures
// itself, and the signalled PEs perform their transfers.
func (e *Engine) round() ([]comm.Comm, error) {
	e.roundSrcs = e.roundSrcs[:0]
	for _, pe := range e.roundDstList {
		e.roundDsts[pe] = false
	}
	e.roundDstList = e.roundDstList[:0]
	if err := e.dispatch(e.tree.Root(), ctrl.Down{Use: ctrl.UseNone}); err != nil {
		return nil, err
	}
	// Pair up the signalled PEs using the ground-truth set and check the
	// algorithm signalled consistent endpoints (Theorem 4's claim is that
	// the established circuits connect true pairs).
	if len(e.roundSrcs) != len(e.roundDstList) {
		return nil, fmt.Errorf("signalled %d sources but %d destinations", len(e.roundSrcs), len(e.roundDstList))
	}
	if e.commUsed+len(e.roundSrcs) > len(e.commArena) {
		return nil, fmt.Errorf("signalled %d sources with only %d communications outstanding", len(e.roundSrcs), len(e.commArena)-e.commUsed)
	}
	base := e.commUsed
	for _, src := range e.roundSrcs {
		dst := e.dstOf[src]
		if dst < 0 {
			return nil, fmt.Errorf("PE %d signalled as source but sources nothing", src)
		}
		if !e.roundDsts[dst] {
			return nil, fmt.Errorf("source %d scheduled without its destination %d", src, dst)
		}
		e.commArena[e.commUsed] = comm.Comm{Src: src, Dst: dst}
		e.commUsed++
	}
	return e.commArena[base:e.commUsed:e.commUsed], nil
}

// dispatch delivers a Phase 2 word to a node. For a PE it performs Step
// 2.2's transfer bookkeeping; for a switch it runs CONFIGURE and recurses.
func (e *Engine) dispatch(n topology.Node, in ctrl.Down) error {
	if e.tree.IsLeaf(n) {
		return e.leaf(n, in)
	}
	if e.inj.FrozenAt(n, e.curRound) {
		// A frozen switch serves nothing; the sequential engine observes the
		// stall synchronously as a dead switch (the concurrent fabric
		// instead watches the wave vanish and reports ErrDeadline).
		return &fault.Error{Engine: "padr", Round: e.curRound, Node: n, Kind: fault.ErrSwitchDown,
			Detail: fmt.Errorf("switch stopped serving Phase 2 words")}
	}
	left, right, err := e.configure(n, in)
	if err != nil {
		return fmt.Errorf("switch %d: %w", n, err)
	}
	lc, rc := e.tree.Left(n), e.tree.Right(n)
	e.sendDown(n, lc, left)
	e.sendDown(n, rc, right)
	if err := e.descend(lc, left); err != nil {
		return err
	}
	return e.descend(rc, right)
}

// descend recurses into child c carrying word w — unless the whole subtree
// is provably inert this round, in which case the walk is pruned and the
// words the full recursion would have delivered are accounted arithmetically.
//
// Soundness: an idle ([null,null]) word entering a subtree with no matched
// pairs left (matchedSub == 0) reproduces itself all the way down — every
// switch below sees st.M == 0, starts nothing, changes no stored state and
// no crossbar, and every PE ignores [null,null]. Skipping the walk is
// therefore unobservable except through the per-word/per-switch callbacks,
// which e.prune guarantees nobody holds. Under the Conservative rule a
// switch with M > 0 may also decline to start (so matchedSub overestimates
// activity), but an overestimate only costs a missed prune, never a wrong
// one.
func (e *Engine) descend(c topology.Node, w ctrl.Down) error {
	if e.prune && w.Use == ctrl.UseNone && !e.tree.IsLeaf(c) && e.matchedSub[c] == 0 {
		e.skipSubtree(c)
		return nil
	}
	if e.inj != nil {
		if e.inj.WordLost(c, e.curRound) {
			kind := fault.ErrWordLost
			if e.inj.LinkDownAt(c, e.curRound) {
				kind = fault.ErrLinkDown
			}
			return &fault.Error{Engine: "padr", Round: e.curRound, Node: c, Kind: kind,
				Detail: fmt.Errorf("broadcast word into node %d never arrived", c)}
		}
		// A corrupted word is forwarded, not rejected here: the receiver's
		// validation (selector ranges, leaf role checks) or the round-end
		// pairing checks catch the inconsistency, and fail() attributes it.
		w, _ = e.inj.CorruptDown(c, e.curRound, w)
	}
	return e.dispatch(c, w)
}

// skipSubtree accounts for the [null,null] words a full dispatch below c
// would have sent: one per node strictly below c (the word into c itself
// was already counted by the caller's sendDown). All skipped words are
// idle, so ActiveDownWords is untouched.
func (e *Engine) skipSubtree(c topology.Node) {
	skipped := e.tree.SubtreeNodes(c) - 1
	e.downWords += skipped
	e.downBytes += skipped * ctrl.DownWordBytes
	e.met.downWords.Add(int64(skipped))
}

// sendDown accounts for one Phase 2 control word on the link parent→child.
func (e *Engine) sendDown(parent, child topology.Node, w ctrl.Down) {
	e.downWords++
	e.met.downWords.Inc()
	if w.Use != ctrl.UseNone {
		e.activeDown++
		e.met.activeDown.Inc()
	}
	if sz, err := ctrl.EncodeDownInto(e.encBuf[:], w); err == nil {
		e.downBytes += sz
	}
	if e.obs.WordSent != nil {
		e.obs.WordSent(parent, child, w)
	}
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{
			Type: "word.send", Engine: "padr", Round: e.curRound,
			Node: int(parent), Child: int(child), Word: w.String(),
		})
	}
}

// leaf handles a Phase 2 word arriving at a PE.
func (e *Engine) leaf(n topology.Node, in ctrl.Down) error {
	pe := e.tree.PE(n)
	switch in.Use {
	case ctrl.UseNone:
		return nil
	case ctrl.UseS:
		if e.leafRole[pe].S != 1 {
			return fmt.Errorf("PE %d signalled as source but is not one", pe)
		}
		if e.leafDone[pe] {
			return fmt.Errorf("source PE %d signalled twice", pe)
		}
		if in.Xs != 0 {
			return fmt.Errorf("source PE %d received selector xs=%d, want 0", pe, in.Xs)
		}
		e.leafDone[pe] = true
		e.roundSrcs = append(e.roundSrcs, pe)
		return nil
	case ctrl.UseD:
		if e.leafRole[pe].D != 1 {
			return fmt.Errorf("PE %d signalled as destination but is not one", pe)
		}
		if e.leafDone[pe] {
			return fmt.Errorf("destination PE %d signalled twice", pe)
		}
		if in.Xd != 0 {
			return fmt.Errorf("destination PE %d received selector xd=%d, want 0", pe, in.Xd)
		}
		e.leafDone[pe] = true
		e.roundDsts[pe] = true
		e.roundDstList = append(e.roundDstList, pe)
		return nil
	default:
		return fmt.Errorf("PE %d received [s,d], which only switches can serve", pe)
	}
}

// configure applies Step at switch u and fires the Configured observer.
// In a reflected run the connections land on the mirror-image physical
// switch with left and right swapped.
func (e *Engine) configure(u topology.Node, in ctrl.Down) (left, right ctrl.Down, err error) {
	phys := u
	if e.reflected {
		phys = e.tree.Reflect(u)
	}
	st := e.stored[u]
	mBefore := st.M
	before := e.switches[phys].Config()
	defer func() {
		e.stored[u] = st
		if dm := mBefore - st.M; dm != 0 {
			// A matched pair started here: keep the subtree totals on the
			// root path exact so future rounds prune correctly.
			for v := u; v >= e.tree.Root(); v = e.tree.Parent(v) {
				e.matchedSub[v] -= dm
			}
		}
		if err != nil {
			return
		}
		if e.obs.Configured != nil {
			e.obs.Configured(phys, e.switches[phys].Config())
		}
		// Trace only genuine reconfigurations: the events are the audit
		// trail for Theorem 8's O(1)-changes-per-switch claim.
		if e.tracer != nil {
			if after := e.switches[phys].Config(); after != before {
				e.tracer.Emit(obs.Event{
					Type: "switch.config", Engine: "padr", Round: e.curRound,
					Node: int(phys), Config: after.String(),
				})
			}
		}
	}()
	if e.reflected {
		return Step(&st, sideSwapper{e.switches[phys]}, in, e.sel)
	}
	return Step(&st, e.switches[phys], in, e.sel)
}

// sideSwapper applies connections with the left and right sides exchanged —
// the crossbar-level meaning of running on the mirrored PE line.
type sideSwapper struct {
	sw *xbar.Switch
}

// Connect implements xbar.Connector.
func (s sideSwapper) Connect(in, out xbar.Side) error {
	return s.sw.Connect(swapLR(in), swapLR(out))
}

func swapLR(s xbar.Side) xbar.Side {
	switch s {
	case xbar.L:
		return xbar.R
	case xbar.R:
		return xbar.L
	default:
		return s
	}
}

// Step is the paper's CONFIGURE procedure (Fig. 5) plus its mirrored
// [d,null] and [s,d] cases (omitted in the paper "for shortage of space").
// It consumes the word received from the parent, establishes this round's
// connections on the switch, updates the C_S state in place, and returns
// the words for the two children. It is exported so that the concurrent
// simulation (package sim) runs the byte-identical per-switch logic.
//
// Selector semantics (Definition 2): a child's pending upward sources are
// ordered left-to-right; indices 0..SL-1 live in the left subtree because a
// communication passing above u strictly contains every communication
// matched at u, so its source lies further left. Destinations mirror this
// with right-to-left ordering: indices 0..DR-1 live in the right subtree.
func Step(stp *ctrl.Stored, sw xbar.Connector, in ctrl.Down, sel Selection) (left, right ctrl.Down, err error) {
	st := *stp
	defer func() { *stp = st }()
	connect := func(in, out xbar.Side) error { return sw.Connect(in, out) }
	// startMatched reports whether this switch may begin one of its own
	// matched pairs now. A matched pair occupies l_i and r_o; under the
	// Conservative rule the switch first drains the outer communications
	// that need those ports (left up-passes on l_i, right down-passes on
	// r_o), which keeps each port's demand sequence contiguous (Lemma 7).
	startMatched := func() bool {
		if st.M == 0 {
			return false
		}
		if sel == Greedy {
			return true
		}
		return st.SL == 0 && st.DR == 0
	}

	switch in.Use {
	case ctrl.UseNone:
		// No demand from above. If pairs are matched here (and, under the
		// Conservative rule, the ports are not owed to outer
		// communications), schedule the outermost one: connect l_i→r_o and
		// direct the children to its endpoints. The pair's source is the
		// (SL)-th pending left source — exactly the number of still-pending
		// communications that pass above u, all of which contain it;
		// mirrored for the destination.
		if startMatched() {
			if err = connect(xbar.L, xbar.R); err != nil {
				return
			}
			st.M--
			left = ctrl.Down{Use: ctrl.UseS, Xs: st.SL}
			right = ctrl.Down{Use: ctrl.UseD, Xd: st.DR}
		}
		return

	case ctrl.UseS:
		// The parent needs our xs-th pending upward source.
		xs := in.Xs
		if xs < 0 || xs >= st.SL+st.SR {
			err = fmt.Errorf("selector xs=%d out of range (SL=%d SR=%d)", xs, st.SL, st.SR)
			return
		}
		if st.SL > xs {
			// Source in the left subtree: l_i→p_o. The right link is idle,
			// but r_o is not available for a matched pair (it would need
			// l_i, which is busy).
			if err = connect(xbar.L, xbar.P); err != nil {
				return
			}
			st.SL--
			left = ctrl.Down{Use: ctrl.UseS, Xs: xs}
			return
		}
		// Source in the right subtree: r_i→p_o; l_i and r_o are free, so u
		// can simultaneously start its own outermost matched pair (the
		// pseudocode's upgrade of C_{D-R} to [s,d]).
		if err = connect(xbar.R, xbar.P); err != nil {
			return
		}
		xsr := xs - st.SL
		st.SR--
		right = ctrl.Down{Use: ctrl.UseS, Xs: xsr}
		if startMatched() {
			if err = connect(xbar.L, xbar.R); err != nil {
				return
			}
			st.M--
			left = ctrl.Down{Use: ctrl.UseS, Xs: st.SL}
			right = ctrl.Down{Use: ctrl.UseSD, Xs: xsr, Xd: st.DR}
		}
		return

	case ctrl.UseD:
		// Mirror of UseS: the parent feeds our xd-th pending downward
		// destination.
		xd := in.Xd
		if xd < 0 || xd >= st.DR+st.DL {
			err = fmt.Errorf("selector xd=%d out of range (DR=%d DL=%d)", xd, st.DR, st.DL)
			return
		}
		if st.DR > xd {
			if err = connect(xbar.P, xbar.R); err != nil {
				return
			}
			st.DR--
			right = ctrl.Down{Use: ctrl.UseD, Xd: xd}
			return
		}
		if err = connect(xbar.P, xbar.L); err != nil {
			return
		}
		xdl := xd - st.DR
		st.DL--
		left = ctrl.Down{Use: ctrl.UseD, Xd: xdl}
		if startMatched() {
			if err = connect(xbar.L, xbar.R); err != nil {
				return
			}
			st.M--
			left = ctrl.Down{Use: ctrl.UseSD, Xs: st.SL, Xd: xdl}
			right = ctrl.Down{Use: ctrl.UseD, Xd: st.DR}
		}
		return

	case ctrl.UseSD:
		// Both halves of the parent link are in use: one pending source
		// goes up, one pending destination comes down.
		xs, xd := in.Xs, in.Xd
		if xs < 0 || xs >= st.SL+st.SR {
			err = fmt.Errorf("selector xs=%d out of range (SL=%d SR=%d)", xs, st.SL, st.SR)
			return
		}
		if xd < 0 || xd >= st.DR+st.DL {
			err = fmt.Errorf("selector xd=%d out of range (DR=%d DL=%d)", xd, st.DR, st.DL)
			return
		}
		srcLeft := st.SL > xs
		dstRight := st.DR > xd
		switch {
		case srcLeft && dstRight:
			if err = connect(xbar.L, xbar.P); err != nil {
				return
			}
			if err = connect(xbar.P, xbar.R); err != nil {
				return
			}
			st.SL--
			st.DR--
			left = ctrl.Down{Use: ctrl.UseS, Xs: xs}
			right = ctrl.Down{Use: ctrl.UseD, Xd: xd}
		case srcLeft && !dstRight:
			if err = connect(xbar.L, xbar.P); err != nil {
				return
			}
			if err = connect(xbar.P, xbar.L); err != nil {
				return
			}
			xdl := xd - st.DR
			st.SL--
			st.DL--
			left = ctrl.Down{Use: ctrl.UseSD, Xs: xs, Xd: xdl}
		case !srcLeft && dstRight:
			if err = connect(xbar.R, xbar.P); err != nil {
				return
			}
			if err = connect(xbar.P, xbar.R); err != nil {
				return
			}
			xsr := xs - st.SL
			st.SR--
			st.DR--
			right = ctrl.Down{Use: ctrl.UseSD, Xs: xsr, Xd: xd}
		default: // source from the right, destination to the left
			if err = connect(xbar.R, xbar.P); err != nil {
				return
			}
			if err = connect(xbar.P, xbar.L); err != nil {
				return
			}
			xsr := xs - st.SL
			xdl := xd - st.DR
			st.SR--
			st.DL--
			// l_i and r_o are both free: start the outermost matched pair
			// too, if permitted.
			if startMatched() {
				if err = connect(xbar.L, xbar.R); err != nil {
					return
				}
				st.M--
				left = ctrl.Down{Use: ctrl.UseSD, Xs: st.SL, Xd: xdl}
				right = ctrl.Down{Use: ctrl.UseSD, Xs: xsr, Xd: st.DR}
			} else {
				left = ctrl.Down{Use: ctrl.UseD, Xd: xdl}
				right = ctrl.Down{Use: ctrl.UseS, Xs: xsr}
			}
		}
		return

	default:
		err = fmt.Errorf("invalid control word %v", in)
		return
	}
}

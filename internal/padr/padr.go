// Package padr implements the paper's core contribution: the Configuration
// and Scheduling Algorithm (CSA) for oriented well-nested communication sets
// on the circuit switched tree, under the Power-Aware Dynamic
// Reconfiguration (PADR) technique (paper §3).
//
// Phase 1 floats constant-size control words up the tree: every PE reports
// [1,0] (source), [0,1] (destination) or [0,0]; every switch matches left
// sources against right destinations (Lemma 1 makes count-only matching
// sound) and stores C_S = [M, S_L−M, D_L, S_R, D_R−M].
//
// Phase 2 repeats for w rounds (w = the set's link width): control words
// flow down from the root telling every switch which halves of its parent
// link are in use this round and which pending leaf (x-th leftmost pending
// source / x-th rightmost pending destination, Definition 2) to hook up.
// Every switch always extends the *outermost* still-pending communication it
// is responsible for, which is what pins its total reconfiguration cost to
// O(1) (Lemmas 6–7, Theorem 8).
//
// The engine is a faithful sequential execution of the distributed
// algorithm: every decision at a switch uses only that switch's stored
// C_S word and the one control word received from its parent. Package sim
// re-runs the identical per-switch logic with one goroutine per node and
// channels for links, and must produce identical results.
package padr

import (
	"fmt"
	"time"

	"cst/internal/comm"
	"cst/internal/ctrl"
	"cst/internal/obs"
	"cst/internal/power"
	"cst/internal/sched"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// MaxRoundsSlack bounds the scheduling loop at width + MaxRoundsSlack
// rounds; exceeding it means the engine lost a communication and is
// reported as an error rather than an infinite loop.
const MaxRoundsSlack = 2

// Observer receives optional callbacks during a run; any field may be nil.
type Observer struct {
	// RoundStart fires before each Phase 2 round, 0-based.
	RoundStart func(round int)
	// WordSent fires for every Phase 2 control word sent from a switch to a
	// child (switch or PE).
	WordSent func(parent, child topology.Node, w ctrl.Down)
	// Configured fires after a switch establishes this round's connections.
	Configured func(u topology.Node, cfg xbar.Config)
	// RoundDone fires after each round with the communications performed.
	RoundDone func(round int, performed []comm.Comm)
}

// Option configures an Engine.
type Option func(*Engine)

// WithMode selects the power accounting mode. The default is
// power.Stateful (hold configurations across rounds; the PADR design
// point). power.Stateless tears every switch down each round — an ablation
// that reproduces the Θ(w)-units behaviour the paper attributes to
// round-by-round reconfiguration.
func WithMode(m power.Mode) Option {
	return func(e *Engine) { e.mode = m }
}

// WithObserver attaches trace callbacks.
func WithObserver(o Observer) Option {
	return func(e *Engine) { e.obs = o }
}

// Selection chooses when a switch starts its own matched pairs. The two
// rules expose a genuine tension in the paper (see DESIGN.md §6 and
// experiment E12): Greedy reproduces Theorem 5 exactly (always w rounds)
// but its per-switch change count grows slowly (≈ log N) on adversarial
// random well-nested sets; Conservative restores the strict Lemma 7
// sequence structure (O(1) changes on every input) but can need a few
// rounds beyond the width.
type Selection int

const (
	// Greedy (the default) is the literal Fig. 5 pseudocode: on a
	// [null,null] round a switch with matched pairs always starts one,
	// even while outer communications that will need the same ports are
	// pending. Time-optimal (Theorem 5 holds exactly); on the paper's
	// chain workloads also power-optimal with at most 2 changes per
	// switch.
	Greedy Selection = iota
	// Conservative starts a matched pair only when no outer communication
	// that needs the same switch ports (a left up-pass on l_i, a right
	// down-pass on r_o) is still pending — the paper's prose: "satisfy all
	// sources from its left subtree, then change configuration". This
	// keeps every port's demand sequence contiguous (Lemma 7's Q1/Q2
	// shape, hence O(1) changes per switch on every input) but may
	// schedule in more than w rounds.
	Conservative
)

// String names the selection rule.
func (s Selection) String() string {
	if s == Conservative {
		return "conservative"
	}
	return "greedy"
}

// WithSelection picks the matched-pair selection rule.
func WithSelection(s Selection) Option {
	return func(e *Engine) { e.sel = s }
}

// WithCrossbars makes the engine drive the caller's switches instead of
// fresh ones. Power meters on them keep accumulating, which is how a
// sequence of communication sets (e.g. successive segmentable-bus cycles)
// is billed across runs: configurations held from a previous run stay free.
// The map must contain one switch per internal node.
func WithCrossbars(switches map[topology.Node]*xbar.Switch) Option {
	return func(e *Engine) {
		for n, sw := range switches {
			if sw != nil {
				e.switches[n] = sw
			}
		}
	}
}

// WithReflectedCrossbars is WithCrossbars for a *mirrored* run: the engine
// schedules a mirrored (originally left-oriented) set, and every connection
// is applied to the reflected physical switch with left and right swapped.
// This bills a left-oriented pass to the same physical crossbars as the
// right-oriented pass, with physically correct attribution. Do not combine
// with the data-plane recorder: the recorded configurations are in physical
// coordinates while the schedule is in mirrored coordinates.
func WithReflectedCrossbars(switches map[topology.Node]*xbar.Switch) Option {
	return func(e *Engine) {
		for n, sw := range switches {
			if sw != nil {
				e.switches[n] = sw
			}
		}
		e.reflected = true
	}
}

// Engine runs CSA on one communication set. An Engine is single-use: create
// with New, run with Run.
type Engine struct {
	tree      *topology.Tree
	set       *comm.Set
	mode      power.Mode
	obs       Observer
	sel       Selection
	reflected bool

	// observability (all optional; nil means uninstrumented)
	reg        *obs.Registry
	tracer     *obs.Tracer
	met        engineMetrics
	instr      bool // reg or tracer attached: take timestamps
	runStart   time.Time
	roundStart time.Time
	curRound   int // round being dispatched, -1 outside Phase 2
	unitsBase  int // cumulative meter baselines at prepare, for
	altBase    int // delta attribution on shared crossbars

	stored   map[topology.Node]ctrl.Stored
	switches map[topology.Node]*xbar.Switch
	dstOf    map[int]int // source PE -> destination PE (ground truth pairing)
	leafRole []ctrl.Up   // what each PE reports in Step 1.1
	leafDone []bool

	ran bool

	// per-round scratch
	roundSrcs []int
	roundDsts map[int]bool

	// stats
	upWords    int
	downWords  int
	upBytes    int
	downBytes  int
	activeDown int
}

// Result is the outcome of a run.
type Result struct {
	// Schedule lists the communications performed per round; it has been
	// produced purely from which PEs were signalled, then checked against
	// the ground-truth pairing (Theorem 4).
	Schedule *sched.Schedule
	// Report is the power ledger (Theorem 8's subject).
	Report *power.Report
	// Width is the set's link width; Rounds == Width on success (Theorem 5).
	Width int
	// Rounds is the number of Phase 2 rounds executed.
	Rounds int
	// InitialStored is a snapshot of every switch's C_S after Phase 1.
	InitialStored map[topology.Node]ctrl.Stored
	// UpWords / DownWords count control words sent in Phase 1 / Phase 2.
	UpWords, DownWords int
	// UpBytes / DownBytes are the encoded sizes of those words.
	UpBytes, DownBytes int
	// ActiveDownWords counts Phase 2 words other than [null,null].
	ActiveDownWords int
	// MaxStoredBytes is the encoded size of the largest per-switch state —
	// constant by Theorem 5.
	MaxStoredBytes int
}

// New builds an engine for the given tree and set. The set must validate,
// be right oriented and well nested, and match the tree's leaf count.
func New(t *topology.Tree, s *comm.Set, opts ...Option) (*Engine, error) {
	if t.Leaves() != s.N {
		return nil, fmt.Errorf("padr: tree has %d leaves, set has N=%d", t.Leaves(), s.N)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.IsWellNested() {
		return nil, fmt.Errorf("padr: set is not an oriented well-nested set: %s", s.String())
	}
	e := &Engine{
		tree:     t,
		set:      s.Clone(),
		stored:   make(map[topology.Node]ctrl.Stored, t.Switches()),
		switches: make(map[topology.Node]*xbar.Switch, t.Switches()),
		dstOf:    make(map[int]int, s.Len()),
		leafRole: make([]ctrl.Up, s.N),
		leafDone: make([]bool, s.N),
	}
	t.EachSwitch(func(n topology.Node) { e.switches[n] = xbar.NewSwitch() })
	for _, c := range s.Comms {
		e.dstOf[c.Src] = c.Dst
		e.leafRole[c.Src] = ctrl.Up{S: 1}
		e.leafRole[c.Dst] = ctrl.Up{D: 1}
	}
	for _, o := range opts {
		o(e)
	}
	e.met = newEngineMetrics(e.reg)
	e.instr = e.reg != nil || e.tracer != nil
	e.curRound = -1
	return e, nil
}

// prepared holds the state computed by prepare (Phase 1 plus validation).
type prepared struct {
	width     int
	maxRounds int
	initial   map[topology.Node]ctrl.Stored
	maxStored int
	schedule  *sched.Schedule
	round     int
}

// prepare runs Phase 1, snapshots the stored words and validates the root.
func (e *Engine) prepare() (*prepared, error) {
	if e.ran {
		return nil, e.fail(fmt.Errorf("padr: engine is single-use; create a new one"))
	}
	e.ran = true
	e.met.runs.Inc()
	e.met.comms.Add(int64(e.set.Len()))
	e.met.switches.Add(int64(len(e.switches)))
	if e.instr {
		e.runStart = time.Now()
		e.unitsBase, e.altBase = e.meterTotals()
	}
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{Type: "run.start", Engine: "padr", Round: -1, N: e.set.Len()})
	}

	width, err := e.set.Width(e.tree)
	if err != nil {
		return nil, e.fail(err)
	}
	e.met.width.Set(int64(width))

	e.phase1()
	e.met.upWords.Add(int64(e.upWords))
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{
			Type: "phase1.done", Engine: "padr", Round: -1,
			N: e.upWords, DurNS: time.Since(e.runStart).Nanoseconds(),
		})
	}

	initial := make(map[topology.Node]ctrl.Stored, len(e.stored))
	maxStored := 0
	for n, st := range e.stored {
		initial[n] = st
		b, err := ctrl.EncodeStored(st)
		if err != nil {
			return nil, e.fail(fmt.Errorf("padr: switch %d state not encodable: %v", n, err))
		}
		if len(b) > maxStored {
			maxStored = len(b)
		}
	}
	// Sanity: after matching, nothing may remain unmatched at the root.
	if up := e.stored[e.tree.Root()].UpWord(); up.S != 0 || up.D != 0 {
		return nil, e.fail(fmt.Errorf("padr: root still advertises %s upward; set is not schedulable", up))
	}

	maxRounds := width + MaxRoundsSlack
	if e.sel == Conservative {
		// The conservative rule may run past the width; bound the loop by
		// the trivial one-communication-per-round schedule instead.
		maxRounds = e.set.Len() + MaxRoundsSlack
	}
	return &prepared{
		width:     width,
		maxRounds: maxRounds,
		initial:   initial,
		maxStored: maxStored,
		schedule:  &sched.Schedule{Set: e.set},
	}, nil
}

// step executes one Phase 2 round against prepared state; done reports
// whether all communications have been performed (in which case no round
// ran).
func (e *Engine) step(p *prepared) (performed []comm.Comm, done bool, err error) {
	if !e.pendingWork() {
		return nil, true, nil
	}
	if p.round >= p.maxRounds {
		return nil, false, e.fail(fmt.Errorf("padr: exceeded %d rounds for a width-%d set; pending work remains", p.round, p.width))
	}
	e.curRound = p.round
	if e.instr {
		e.roundStart = time.Now()
	}
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{Type: "round.start", Engine: "padr", Round: p.round})
	}
	if e.obs.RoundStart != nil {
		e.obs.RoundStart(p.round)
	}
	if e.mode == power.Stateless {
		for _, sw := range e.switches {
			sw.Reset()
		}
	}
	performed, err = e.round()
	if err != nil {
		return nil, false, e.fail(fmt.Errorf("padr: round %d: %v", p.round, err))
	}
	if len(performed) == 0 {
		return nil, false, e.fail(fmt.Errorf("padr: round %d made no progress but work remains", p.round))
	}
	p.schedule.Rounds = append(p.schedule.Rounds, performed)
	e.met.rounds.Inc()
	if e.instr {
		d := time.Since(e.roundStart)
		e.met.roundLatency.ObserveDuration(d)
		if e.tracer != nil {
			e.tracer.Emit(obs.Event{
				Type: "round.done", Engine: "padr", Round: p.round,
				N: len(performed), DurNS: d.Nanoseconds(),
			})
		}
	}
	if e.obs.RoundDone != nil {
		e.obs.RoundDone(p.round, performed)
	}
	p.round++
	e.curRound = -1
	return performed, false, nil
}

// finalize validates the completed schedule and assembles the result.
func (e *Engine) finalize(p *prepared) (*Result, error) {
	rounds := p.schedule.NumRounds()
	if e.sel == Greedy && rounds != p.width {
		return nil, e.fail(fmt.Errorf("padr: took %d rounds for a width-%d set (Theorem 5 violated)", rounds, p.width))
	}
	if e.instr {
		// Diff the cumulative switch meters against the prepare-time
		// baseline so shared crossbars (WithCrossbars) bill only this run.
		units, alts := e.meterTotals()
		e.met.units.Add(int64(units - e.unitsBase))
		e.met.alternations.Add(int64(alts - e.altBase))
		e.met.runLatency.ObserveDuration(time.Since(e.runStart))
		if e.tracer != nil {
			e.tracer.Emit(obs.Event{
				Type: "run.done", Engine: "padr", Round: -1,
				N: rounds, DurNS: time.Since(e.runStart).Nanoseconds(),
			})
		}
	}
	return &Result{
		Schedule:        p.schedule,
		Report:          power.Collect(e.algorithmName(), e.mode, rounds, e.tree, e.switches),
		Width:           p.width,
		Rounds:          rounds,
		InitialStored:   p.initial,
		UpWords:         e.upWords,
		DownWords:       e.downWords,
		UpBytes:         e.upBytes,
		DownBytes:       e.downBytes,
		ActiveDownWords: e.activeDown,
		MaxStoredBytes:  p.maxStored,
	}, nil
}

// Run executes Phase 1 once and Phase 2 until every communication has been
// performed, then returns the schedule, power report and statistics.
func (e *Engine) Run() (*Result, error) {
	p, err := e.prepare()
	if err != nil {
		return nil, err
	}
	for {
		_, done, err := e.step(p)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	return e.finalize(p)
}

// Stepper drives Phase 2 one round at a time — for embedding the scheduler
// in an external simulation loop. Build with NewStepper, call Next until
// done, then Result.
type Stepper struct {
	e   *Engine
	p   *prepared
	res *Result
}

// NewStepper builds an engine and runs Phase 1 immediately.
func NewStepper(t *topology.Tree, s *comm.Set, opts ...Option) (*Stepper, error) {
	e, err := New(t, s, opts...)
	if err != nil {
		return nil, err
	}
	p, err := e.prepare()
	if err != nil {
		return nil, err
	}
	return &Stepper{e: e, p: p}, nil
}

// Width returns the set's link width (the target round count).
func (st *Stepper) Width() int { return st.p.width }

// Round returns the number of rounds executed so far.
func (st *Stepper) Round() int { return st.p.round }

// Next executes one round. done=true means all communications were already
// performed and no round ran.
func (st *Stepper) Next() (performed []comm.Comm, done bool, err error) {
	if st.res != nil {
		return nil, true, nil
	}
	return st.e.step(st.p)
}

// Result finishes any remaining rounds and returns the final result. It is
// idempotent.
func (st *Stepper) Result() (*Result, error) {
	if st.res != nil {
		return st.res, nil
	}
	for {
		_, done, err := st.e.step(st.p)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	res, err := st.e.finalize(st.p)
	if err != nil {
		return nil, err
	}
	st.res = res
	return res, nil
}

// algorithmName labels power reports: "padr" for the default rule, since
// Greedy is the literal paper algorithm, and "padr-conservative" otherwise.
func (e *Engine) algorithmName() string {
	if e.sel == Conservative {
		return "padr-conservative"
	}
	return "padr"
}

// phase1 distributes control information up the tree (Steps 1.1–1.3).
func (e *Engine) phase1() {
	e.tree.EachSwitchBottomUp(func(u topology.Node) {
		left := e.upWordFrom(e.tree.Left(u))
		right := e.upWordFrom(e.tree.Right(u))
		e.stored[u] = ctrl.Match(left, right)
	})
}

// upWordFrom returns the C_U word the given child sends its parent,
// counting the message and its encoded size.
func (e *Engine) upWordFrom(child topology.Node) ctrl.Up {
	var up ctrl.Up
	if e.tree.IsLeaf(child) {
		up = e.leafRole[e.tree.PE(child)]
	} else {
		up = e.stored[child].UpWord()
	}
	e.upWords++
	if b, err := ctrl.EncodeUp(up); err == nil {
		e.upBytes += len(b)
	}
	return up
}

// pendingWork reports whether any switch or PE still has unscheduled
// demands.
func (e *Engine) pendingWork() bool {
	for _, st := range e.stored {
		if st.Pending() {
			return true
		}
	}
	for pe := range e.leafRole {
		if (e.leafRole[pe].S > 0 || e.leafRole[pe].D > 0) && !e.leafDone[pe] {
			return true
		}
	}
	return false
}

// round executes one Phase 2 round: words flow top-down from the root
// (which behaves as if it received [null,null]), every switch configures
// itself, and the signalled PEs perform their transfers.
func (e *Engine) round() ([]comm.Comm, error) {
	e.roundSrcs = e.roundSrcs[:0]
	e.roundDsts = make(map[int]bool)
	if err := e.dispatch(e.tree.Root(), ctrl.Down{Use: ctrl.UseNone}); err != nil {
		return nil, err
	}
	// Pair up the signalled PEs using the ground-truth set and check the
	// algorithm signalled consistent endpoints (Theorem 4's claim is that
	// the established circuits connect true pairs).
	if len(e.roundSrcs) != len(e.roundDsts) {
		return nil, fmt.Errorf("signalled %d sources but %d destinations", len(e.roundSrcs), len(e.roundDsts))
	}
	performed := make([]comm.Comm, 0, len(e.roundSrcs))
	for _, src := range e.roundSrcs {
		dst, ok := e.dstOf[src]
		if !ok {
			return nil, fmt.Errorf("PE %d signalled as source but sources nothing", src)
		}
		if !e.roundDsts[dst] {
			return nil, fmt.Errorf("source %d scheduled without its destination %d", src, dst)
		}
		performed = append(performed, comm.Comm{Src: src, Dst: dst})
	}
	return performed, nil
}

// dispatch delivers a Phase 2 word to a node. For a PE it performs Step
// 2.2's transfer bookkeeping; for a switch it runs CONFIGURE and recurses.
func (e *Engine) dispatch(n topology.Node, in ctrl.Down) error {
	if e.tree.IsLeaf(n) {
		return e.leaf(n, in)
	}
	left, right, err := e.configure(n, in)
	if err != nil {
		return fmt.Errorf("switch %d: %v", n, err)
	}
	e.sendDown(n, e.tree.Left(n), left)
	e.sendDown(n, e.tree.Right(n), right)
	if err := e.dispatch(e.tree.Left(n), left); err != nil {
		return err
	}
	return e.dispatch(e.tree.Right(n), right)
}

// sendDown accounts for one Phase 2 control word on the link parent→child.
func (e *Engine) sendDown(parent, child topology.Node, w ctrl.Down) {
	e.downWords++
	e.met.downWords.Inc()
	if w.Use != ctrl.UseNone {
		e.activeDown++
		e.met.activeDown.Inc()
	}
	if b, err := ctrl.EncodeDown(w); err == nil {
		e.downBytes += len(b)
	}
	if e.obs.WordSent != nil {
		e.obs.WordSent(parent, child, w)
	}
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{
			Type: "word.send", Engine: "padr", Round: e.curRound,
			Node: int(parent), Child: int(child), Word: w.String(),
		})
	}
}

// leaf handles a Phase 2 word arriving at a PE.
func (e *Engine) leaf(n topology.Node, in ctrl.Down) error {
	pe := e.tree.PE(n)
	switch in.Use {
	case ctrl.UseNone:
		return nil
	case ctrl.UseS:
		if e.leafRole[pe].S != 1 {
			return fmt.Errorf("PE %d signalled as source but is not one", pe)
		}
		if e.leafDone[pe] {
			return fmt.Errorf("source PE %d signalled twice", pe)
		}
		if in.Xs != 0 {
			return fmt.Errorf("source PE %d received selector xs=%d, want 0", pe, in.Xs)
		}
		e.leafDone[pe] = true
		e.roundSrcs = append(e.roundSrcs, pe)
		return nil
	case ctrl.UseD:
		if e.leafRole[pe].D != 1 {
			return fmt.Errorf("PE %d signalled as destination but is not one", pe)
		}
		if e.leafDone[pe] {
			return fmt.Errorf("destination PE %d signalled twice", pe)
		}
		if in.Xd != 0 {
			return fmt.Errorf("destination PE %d received selector xd=%d, want 0", pe, in.Xd)
		}
		e.leafDone[pe] = true
		e.roundDsts[pe] = true
		return nil
	default:
		return fmt.Errorf("PE %d received [s,d], which only switches can serve", pe)
	}
}

// connect establishes a connection on switch u's crossbar.
func (e *Engine) connect(u topology.Node, in, out xbar.Side) error {
	return e.switches[u].Connect(in, out)
}

// configure applies Step at switch u and fires the Configured observer.
// In a reflected run the connections land on the mirror-image physical
// switch with left and right swapped.
func (e *Engine) configure(u topology.Node, in ctrl.Down) (left, right ctrl.Down, err error) {
	phys := u
	if e.reflected {
		phys = e.tree.Reflect(u)
	}
	st := e.stored[u]
	before := e.switches[phys].Config()
	defer func() {
		e.stored[u] = st
		if err != nil {
			return
		}
		if e.obs.Configured != nil {
			e.obs.Configured(phys, e.switches[phys].Config())
		}
		// Trace only genuine reconfigurations: the events are the audit
		// trail for Theorem 8's O(1)-changes-per-switch claim.
		if e.tracer != nil {
			if after := e.switches[phys].Config(); after != before {
				e.tracer.Emit(obs.Event{
					Type: "switch.config", Engine: "padr", Round: e.curRound,
					Node: int(phys), Config: after.String(),
				})
			}
		}
	}()
	if e.reflected {
		return Step(&st, sideSwapper{e.switches[phys]}, in, e.sel)
	}
	return Step(&st, e.switches[phys], in, e.sel)
}

// sideSwapper applies connections with the left and right sides exchanged —
// the crossbar-level meaning of running on the mirrored PE line.
type sideSwapper struct {
	sw *xbar.Switch
}

// Connect implements xbar.Connector.
func (s sideSwapper) Connect(in, out xbar.Side) error {
	return s.sw.Connect(swapLR(in), swapLR(out))
}

func swapLR(s xbar.Side) xbar.Side {
	switch s {
	case xbar.L:
		return xbar.R
	case xbar.R:
		return xbar.L
	default:
		return s
	}
}

// Step is the paper's CONFIGURE procedure (Fig. 5) plus its mirrored
// [d,null] and [s,d] cases (omitted in the paper "for shortage of space").
// It consumes the word received from the parent, establishes this round's
// connections on the switch, updates the C_S state in place, and returns
// the words for the two children. It is exported so that the concurrent
// simulation (package sim) runs the byte-identical per-switch logic.
//
// Selector semantics (Definition 2): a child's pending upward sources are
// ordered left-to-right; indices 0..SL-1 live in the left subtree because a
// communication passing above u strictly contains every communication
// matched at u, so its source lies further left. Destinations mirror this
// with right-to-left ordering: indices 0..DR-1 live in the right subtree.
func Step(stp *ctrl.Stored, sw xbar.Connector, in ctrl.Down, sel Selection) (left, right ctrl.Down, err error) {
	st := *stp
	defer func() { *stp = st }()
	connect := func(in, out xbar.Side) error { return sw.Connect(in, out) }
	// startMatched reports whether this switch may begin one of its own
	// matched pairs now. A matched pair occupies l_i and r_o; under the
	// Conservative rule the switch first drains the outer communications
	// that need those ports (left up-passes on l_i, right down-passes on
	// r_o), which keeps each port's demand sequence contiguous (Lemma 7).
	startMatched := func() bool {
		if st.M == 0 {
			return false
		}
		if sel == Greedy {
			return true
		}
		return st.SL == 0 && st.DR == 0
	}

	switch in.Use {
	case ctrl.UseNone:
		// No demand from above. If pairs are matched here (and, under the
		// Conservative rule, the ports are not owed to outer
		// communications), schedule the outermost one: connect l_i→r_o and
		// direct the children to its endpoints. The pair's source is the
		// (SL)-th pending left source — exactly the number of still-pending
		// communications that pass above u, all of which contain it;
		// mirrored for the destination.
		if startMatched() {
			if err = connect(xbar.L, xbar.R); err != nil {
				return
			}
			st.M--
			left = ctrl.Down{Use: ctrl.UseS, Xs: st.SL}
			right = ctrl.Down{Use: ctrl.UseD, Xd: st.DR}
		}
		return

	case ctrl.UseS:
		// The parent needs our xs-th pending upward source.
		xs := in.Xs
		if xs < 0 || xs >= st.SL+st.SR {
			err = fmt.Errorf("selector xs=%d out of range (SL=%d SR=%d)", xs, st.SL, st.SR)
			return
		}
		if st.SL > xs {
			// Source in the left subtree: l_i→p_o. The right link is idle,
			// but r_o is not available for a matched pair (it would need
			// l_i, which is busy).
			if err = connect(xbar.L, xbar.P); err != nil {
				return
			}
			st.SL--
			left = ctrl.Down{Use: ctrl.UseS, Xs: xs}
			return
		}
		// Source in the right subtree: r_i→p_o; l_i and r_o are free, so u
		// can simultaneously start its own outermost matched pair (the
		// pseudocode's upgrade of C_{D-R} to [s,d]).
		if err = connect(xbar.R, xbar.P); err != nil {
			return
		}
		xsr := xs - st.SL
		st.SR--
		right = ctrl.Down{Use: ctrl.UseS, Xs: xsr}
		if startMatched() {
			if err = connect(xbar.L, xbar.R); err != nil {
				return
			}
			st.M--
			left = ctrl.Down{Use: ctrl.UseS, Xs: st.SL}
			right = ctrl.Down{Use: ctrl.UseSD, Xs: xsr, Xd: st.DR}
		}
		return

	case ctrl.UseD:
		// Mirror of UseS: the parent feeds our xd-th pending downward
		// destination.
		xd := in.Xd
		if xd < 0 || xd >= st.DR+st.DL {
			err = fmt.Errorf("selector xd=%d out of range (DR=%d DL=%d)", xd, st.DR, st.DL)
			return
		}
		if st.DR > xd {
			if err = connect(xbar.P, xbar.R); err != nil {
				return
			}
			st.DR--
			right = ctrl.Down{Use: ctrl.UseD, Xd: xd}
			return
		}
		if err = connect(xbar.P, xbar.L); err != nil {
			return
		}
		xdl := xd - st.DR
		st.DL--
		left = ctrl.Down{Use: ctrl.UseD, Xd: xdl}
		if startMatched() {
			if err = connect(xbar.L, xbar.R); err != nil {
				return
			}
			st.M--
			left = ctrl.Down{Use: ctrl.UseSD, Xs: st.SL, Xd: xdl}
			right = ctrl.Down{Use: ctrl.UseD, Xd: st.DR}
		}
		return

	case ctrl.UseSD:
		// Both halves of the parent link are in use: one pending source
		// goes up, one pending destination comes down.
		xs, xd := in.Xs, in.Xd
		if xs < 0 || xs >= st.SL+st.SR {
			err = fmt.Errorf("selector xs=%d out of range (SL=%d SR=%d)", xs, st.SL, st.SR)
			return
		}
		if xd < 0 || xd >= st.DR+st.DL {
			err = fmt.Errorf("selector xd=%d out of range (DR=%d DL=%d)", xd, st.DR, st.DL)
			return
		}
		srcLeft := st.SL > xs
		dstRight := st.DR > xd
		switch {
		case srcLeft && dstRight:
			if err = connect(xbar.L, xbar.P); err != nil {
				return
			}
			if err = connect(xbar.P, xbar.R); err != nil {
				return
			}
			st.SL--
			st.DR--
			left = ctrl.Down{Use: ctrl.UseS, Xs: xs}
			right = ctrl.Down{Use: ctrl.UseD, Xd: xd}
		case srcLeft && !dstRight:
			if err = connect(xbar.L, xbar.P); err != nil {
				return
			}
			if err = connect(xbar.P, xbar.L); err != nil {
				return
			}
			xdl := xd - st.DR
			st.SL--
			st.DL--
			left = ctrl.Down{Use: ctrl.UseSD, Xs: xs, Xd: xdl}
		case !srcLeft && dstRight:
			if err = connect(xbar.R, xbar.P); err != nil {
				return
			}
			if err = connect(xbar.P, xbar.R); err != nil {
				return
			}
			xsr := xs - st.SL
			st.SR--
			st.DR--
			right = ctrl.Down{Use: ctrl.UseSD, Xs: xsr, Xd: xd}
		default: // source from the right, destination to the left
			if err = connect(xbar.R, xbar.P); err != nil {
				return
			}
			if err = connect(xbar.P, xbar.L); err != nil {
				return
			}
			xsr := xs - st.SL
			xdl := xd - st.DR
			st.SR--
			st.DL--
			// l_i and r_o are both free: start the outermost matched pair
			// too, if permitted.
			if startMatched() {
				if err = connect(xbar.L, xbar.R); err != nil {
					return
				}
				st.M--
				left = ctrl.Down{Use: ctrl.UseSD, Xs: st.SL, Xd: xdl}
				right = ctrl.Down{Use: ctrl.UseSD, Xs: xsr, Xd: st.DR}
			} else {
				left = ctrl.Down{Use: ctrl.UseD, Xd: xdl}
				right = ctrl.Down{Use: ctrl.UseS, Xs: xsr}
			}
		}
		return

	default:
		err = fmt.Errorf("invalid control word %v", in)
		return
	}
}

package padr

import (
	"testing"

	"cst/internal/comm"
	"cst/internal/obs"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// An instrumented run must publish cst_padr_* series that agree with the
// engine's own Result statistics, and trace a consistent event stream.
func TestInstrumentedRun(t *testing.T) {
	s := comm.MustParse("(()())..")
	tr := topology.MustNew(s.N)
	reg := obs.New()
	tracer := obs.NewTracer(nil, 4096)
	e, err := New(tr, s, WithRegistry(reg), WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"cst_padr_runs_total":                1,
		"cst_padr_errors_total":              0,
		"cst_padr_rounds_total":              int64(res.Rounds),
		"cst_padr_comms_scheduled_total":     int64(s.Len()),
		"cst_padr_phase1_words_total":        int64(res.UpWords),
		"cst_padr_phase2_words_total":        int64(res.DownWords),
		"cst_padr_phase2_active_words_total": int64(res.ActiveDownWords),
		"cst_padr_power_units_total":         int64(res.Report.TotalUnits()),
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges["cst_padr_width"]; got != int64(res.Width) {
		t.Errorf("width gauge = %d, want %d", got, res.Width)
	}
	hist := snap.Histograms["cst_padr_round_latency_seconds"]
	if hist.Count != int64(res.Rounds) {
		t.Errorf("round latency histogram has %d samples, want %d", hist.Count, res.Rounds)
	}
	if tracer.Events() == 0 {
		t.Error("tracer saw no events")
	}

	// A reused engine must fail and tick the error counter.
	if _, err := e.Run(); err == nil {
		t.Fatal("second Run on a single-use engine: want error")
	}
	if got := reg.Counter("cst_padr_errors_total", "").Value(); got != 1 {
		t.Errorf("errors counter = %d, want 1 after reuse", got)
	}
	// Reuse is rejected before a run starts; runs_total must not grow.
	if got := reg.Counter("cst_padr_runs_total", "").Value(); got != 1 {
		t.Errorf("runs counter = %d, want 1", got)
	}
}

// On shared crossbars the unit counter must bill each run its own delta,
// not the cumulative meter totals.
func TestInstrumentedSharedCrossbars(t *testing.T) {
	s := comm.MustParse("(())")
	tr := topology.MustNew(s.N)
	switches := map[topology.Node]*xbar.Switch{}
	tr.EachSwitch(func(n topology.Node) { switches[n] = xbar.NewSwitch() })
	reg := obs.New()

	run := func() int {
		e, err := New(tr, s, WithRegistry(reg), WithCrossbars(switches))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Report.TotalUnits()
	}
	first := run()
	second := run() // cumulative meters: includes the first run's units
	delta := second - first
	want := int64(first + delta)
	if got := reg.Counter("cst_padr_power_units_total", "").Value(); got != want {
		t.Fatalf("units counter = %d, want %d (first %d + delta %d)", got, want, first, delta)
	}
}

// An uninstrumented engine must not require a registry: nil handles no-op.
func TestUninstrumentedRunStillWorks(t *testing.T) {
	s := comm.MustParse("(((())))")
	tr := topology.MustNew(s.N)
	e, err := New(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

package padr

import (
	"math/rand"
	"reflect"
	"testing"

	"cst/internal/comm"
	"cst/internal/power"
	"cst/internal/topology"
)

// reuseWorkloads returns a spread of workload shapes: chains (dense nesting),
// split chains (configuration churn), staircases, combs, and random
// well-nested sets — the same families the E1–E16 experiments sweep.
func reuseWorkloads(t *testing.T, n int) []*comm.Set {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	sets := []*comm.Set{}
	add := func(s *comm.Set, err error) {
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, s)
	}
	add(comm.NestedChain(n, 6))
	add(comm.SplitChain(n, 6))
	add(comm.Staircase(n, 8))
	add(comm.DisjointPairs(n, 10))
	for i := 0; i < 3; i++ {
		add(comm.RandomWellNested(rng, n, n/4))
	}
	sets = append(sets, comm.NewSet(n)) // empty set
	return sets
}

// runDigest is everything a Result exposes, flattened for comparison.
type runDigest struct {
	rounds                [][]comm.Comm
	report                *power.Report
	upWords, downWords    int
	upBytes, downBytes    int
	activeDown, maxStored int
	widthVal, roundsVal   int
}

func digest(r *Result) runDigest {
	return runDigest{
		rounds:     r.Schedule.Rounds,
		report:     r.Report,
		upWords:    r.UpWords,
		downWords:  r.DownWords,
		upBytes:    r.UpBytes,
		downBytes:  r.DownBytes,
		activeDown: r.ActiveDownWords,
		maxStored:  r.MaxStoredBytes,
		widthVal:   r.Width,
		roundsVal:  r.Rounds,
	}
}

// TestResetMatchesFresh pins the reuse contract: running three sets through
// one engine via Reset produces bit-identical results — schedules, power
// reports, and word counts — to running each through its own fresh engine.
// Checked for both selection rules crossed with both power modes.
func TestResetMatchesFresh(t *testing.T) {
	const n = 64
	tree := topology.MustNew(n)
	sets := reuseWorkloads(t, n)

	for _, sel := range []Selection{Greedy, Conservative} {
		for _, mode := range []power.Mode{power.Stateful, power.Stateless} {
			opts := []Option{WithSelection(sel), WithMode(mode)}
			var eng *Engine
			for i, s := range sets {
				var err error
				if eng == nil {
					eng, err = New(tree, s, opts...)
				} else {
					err = eng.Reset(s, opts...)
				}
				if err != nil {
					t.Fatalf("sel=%v mode=%v set %d: reset: %v", sel, mode, i, err)
				}
				reused, err := eng.Run()
				if err != nil {
					t.Fatalf("sel=%v mode=%v set %d: reused run: %v", sel, mode, i, err)
				}

				fe, err := New(tree, s, opts...)
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := fe.Run()
				if err != nil {
					t.Fatalf("sel=%v mode=%v set %d: fresh run: %v", sel, mode, i, err)
				}

				if got, want := digest(reused), digest(fresh); !reflect.DeepEqual(got, want) {
					t.Errorf("sel=%v mode=%v set %d: reused engine diverged from fresh\nreused: %+v\nfresh:  %+v",
						sel, mode, i, got, want)
				}
				if !reflect.DeepEqual(reused.InitialStored, fresh.InitialStored) {
					t.Errorf("sel=%v mode=%v set %d: InitialStored diverged", sel, mode, i)
				}
				if err := reused.Schedule.Verify(tree); err != nil {
					t.Errorf("sel=%v mode=%v set %d: reused schedule invalid: %v", sel, mode, i, err)
				}
			}
		}
	}
}

// TestResetSurvivesArmFailure pins that a rejected Reset (bad set) leaves
// the engine usable: the next valid Reset+Run matches a fresh engine.
func TestResetSurvivesArmFailure(t *testing.T) {
	tree := topology.MustNew(16)
	good := comm.MustParse("((.))((.))......")
	eng, err := New(tree, good)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Crossing set: arm must reject it.
	bad := comm.NewSet(16, comm.Comm{Src: 0, Dst: 2}, comm.Comm{Src: 1, Dst: 3})
	if err := eng.Reset(bad); err == nil {
		t.Fatal("Reset accepted a crossing set")
	}
	if err := eng.Reset(good); err != nil {
		t.Fatalf("Reset after failure: %v", err)
	}
	reused, err := eng.Run()
	if err != nil {
		t.Fatalf("run after failed Reset: %v", err)
	}
	fe, _ := New(tree, good)
	fresh, _ := fe.Run()
	if !reflect.DeepEqual(digest(reused), digest(fresh)) {
		t.Error("engine diverged from fresh after a failed Reset")
	}
}

// TestReusedEngineAllocs pins the steady-state allocation count of a
// Reset+Run cycle. The flat-arena engine allocates only the Result, its
// Schedule/Report shells, and the cloned output set — independent of N and
// rounds. The bound is deliberately loose (2x measured) to absorb runtime
// jitter without letting an O(N)- or O(rounds)-allocation regression slip
// through.
func TestReusedEngineAllocs(t *testing.T) {
	tree := topology.MustNew(256)
	s, err := comm.NestedChain(256, 8)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(tree, s)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := eng.Reset(s); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~13 allocs/op on the reference platform (Result + schedule
	// rows + report + set clone). 32 leaves headroom for runtime jitter
	// while still catching any per-node or per-word allocation creep
	// (which would be hundreds to thousands).
	if allocs > 32 {
		t.Errorf("Reset+Run allocated %.0f times; want <= 32", allocs)
	}
}

// TestWidthIntoAllocs pins that comm.Set.WidthInto with warm scratch is
// allocation-free.
func TestWidthIntoAllocs(t *testing.T) {
	tree := topology.MustNew(256)
	s, err := comm.RandomWellNested(rand.New(rand.NewSource(9)), 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]int, tree.DirectedEdgeCount())
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := s.WidthInto(tree, scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("WidthInto allocated %.0f times on warm scratch; want 0", allocs)
	}
}

// RunRounds must agree with Run on the round count and — unlike Run, which
// assembles a Result — allocate nothing on a warm engine. The online
// dispatcher's zero-alloc steady state is built on this.
func TestRunRoundsMatchesRunAllocFree(t *testing.T) {
	tree := topology.MustNew(256)
	s, err := comm.RandomWellNested(rand.New(rand.NewSource(11)), 256, 48)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(tree, s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	light, err := New(tree, s)
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := light.RunRounds()
	if err != nil {
		t.Fatal(err)
	}
	if rounds != res.Rounds {
		t.Fatalf("RunRounds = %d, Run = %d", rounds, res.Rounds)
	}

	// Warm, then pin: Reset + RunRounds is allocation-free.
	if err := light.Reset(s); err != nil {
		t.Fatal(err)
	}
	if _, err := light.RunRounds(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := light.Reset(s); err != nil {
			t.Fatal(err)
		}
		if _, err := light.RunRounds(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Reset+RunRounds allocated %.0f times; want 0", allocs)
	}
}

package padr_test

import (
	"fmt"

	"cst/internal/comm"
	"cst/internal/padr"
	"cst/internal/topology"
)

// Run the paper's algorithm end to end on a width-2 set.
func ExampleEngine_Run() {
	set := comm.MustParse("((.)(.))")
	tree := topology.MustNew(8)
	engine, err := padr.New(tree, set)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := engine.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("width %d, rounds %d, max units/switch %d\n",
		res.Width, res.Rounds, res.Report.MaxUnits())
	// Output:
	// width 2, rounds 2, max units/switch 2
}

// Drive the scheduler one round at a time from an external loop.
func ExampleStepper() {
	set, _ := comm.NestedChain(16, 3)
	stepper, err := padr.NewStepper(topology.MustNew(16), set)
	if err != nil {
		fmt.Println(err)
		return
	}
	for {
		performed, done, err := stepper.Next()
		if err != nil {
			fmt.Println(err)
			return
		}
		if done {
			break
		}
		fmt.Println("round", stepper.Round()-1, "->", performed)
	}
	// Output:
	// round 0 -> [0->15]
	// round 1 -> [1->14]
	// round 2 -> [2->13]
}

// The two selection rules of the reproduction finding (DESIGN.md §6a).
func ExampleWithSelection() {
	set := comm.MustParse("..(((()(....))))")
	tree := topology.MustNew(16)
	for _, sel := range []padr.Selection{padr.Greedy, padr.Conservative} {
		e, _ := padr.New(tree, set.Clone(), padr.WithSelection(sel))
		res, _ := e.Run()
		fmt.Printf("%s: %d rounds (width %d)\n", sel, res.Rounds, res.Width)
	}
	// Output:
	// greedy: 4 rounds (width 4)
	// conservative: 4 rounds (width 4)
}

package padr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cst/internal/comm"
	"cst/internal/ctrl"
	"cst/internal/power"
	"cst/internal/topology"
	"cst/internal/xbar"
)

func mustEngine(t *testing.T, expr string, opts ...Option) *Engine {
	t.Helper()
	s, err := comm.Parse(expr)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(topology.MustNew(s.N), s, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func mustRun(t *testing.T, expr string, opts ...Option) *Result {
	t.Helper()
	res, err := mustEngine(t, expr, opts...).Run()
	if err != nil {
		t.Fatalf("Run(%q): %v", expr, err)
	}
	return res
}

func TestNewRejectsBadInputs(t *testing.T) {
	s := comm.MustParse("(())")
	if _, err := New(topology.MustNew(8), s); err == nil {
		t.Error("tree/set size mismatch: want error")
	}
	crossing := comm.NewSet(4, comm.Comm{Src: 0, Dst: 2}, comm.Comm{Src: 1, Dst: 3})
	if _, err := New(topology.MustNew(4), crossing); err == nil {
		t.Error("crossing set: want error")
	}
	leftward := comm.NewSet(4, comm.Comm{Src: 2, Dst: 0})
	if _, err := New(topology.MustNew(4), leftward); err == nil {
		t.Error("left-oriented set: want error")
	}
	invalid := comm.NewSet(4, comm.Comm{Src: 0, Dst: 9})
	if _, err := New(topology.MustNew(4), invalid); err == nil {
		t.Error("invalid set: want error")
	}
}

func TestEngineSingleUse(t *testing.T) {
	e := mustEngine(t, "(())")
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("second Run must fail")
	}
}

func TestEmptySet(t *testing.T) {
	res := mustRun(t, "....")
	if res.Rounds != 0 || res.Width != 0 {
		t.Fatalf("empty set: rounds=%d width=%d", res.Rounds, res.Width)
	}
	if res.Report.TotalUnits() != 0 {
		t.Fatalf("empty set must spend no power, got %d", res.Report.TotalUnits())
	}
}

func TestSingleCommunication(t *testing.T) {
	res := mustRun(t, "(.)")
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	if got := res.Schedule.Rounds[0]; len(got) != 1 || got[0] != (comm.Comm{Src: 0, Dst: 2}) {
		t.Fatalf("round 0 = %v", got)
	}
	if err := res.Schedule.VerifyOptimal(topology.MustNew(4)); err != nil {
		t.Fatal(err)
	}
}

// Figure 4(a): Phase 1 must classify communications at each switch into the
// five types. Hand-checked against the 8-PE set ((.)(.)) with an outer pair.
func TestFigure4Classification(t *testing.T) {
	e := mustEngine(t, "((.)(.))")
	e.phase1()
	cases := map[topology.Node]ctrl.Stored{
		2: {M: 1, SL: 1},  // matches (1,3); source 0 passes up
		3: {M: 1, DR: 1},  // matches (4,6); destination 7 fed from above
		1: {M: 1},         // matches (0,7) at the root
		4: {SL: 1, SR: 1}, // PEs 0,1 both source upward
		5: {DR: 1},        // PE 3 receives from above
		6: {SL: 1},        // PE 4 sources upward
		7: {DL: 1, DR: 1}, // PEs 6,7 both receive from above
	}
	for n, want := range cases {
		if got := e.stored[n]; got != want {
			t.Errorf("switch %d stored %v, want %v", n, got, want)
		}
	}
	// Upward words after matching (Step 1.3).
	if up := e.stored[2].UpWord(); up != (ctrl.Up{S: 1, D: 0}) {
		t.Errorf("node 2 sends %v, want [1,0]", up)
	}
	if up := e.stored[3].UpWord(); up != (ctrl.Up{S: 0, D: 1}) {
		t.Errorf("node 3 sends %v, want [0,1]", up)
	}
	if up := e.stored[1].UpWord(); up != (ctrl.Up{}) {
		t.Errorf("root sends %v, want [0,0]", up)
	}
	// Leaf words (Step 1.1).
	wantRole := []ctrl.Up{{S: 1}, {S: 1}, {}, {D: 1}, {S: 1}, {}, {D: 1}, {D: 1}}
	for pe, want := range wantRole {
		if e.leafRole[pe] != want {
			t.Errorf("PE %d role %v, want %v", pe, e.leafRole[pe], want)
		}
	}
}

// The CONFIGURE cases of Fig. 5: a switch with a matched pair receiving
// [null,null] connects l->r and emits [s,null]/[d,null] with the stored
// unmatched counts as selectors.
func TestConfigureNullNull(t *testing.T) {
	e := mustEngine(t, "((.)(.))")
	e.phase1()
	left, right, err := e.configure(2, ctrl.Down{Use: ctrl.UseNone})
	if err != nil {
		t.Fatal(err)
	}
	if left != (ctrl.Down{Use: ctrl.UseS, Xs: 1}) {
		t.Errorf("left word %v, want [s,null] xs=1", left)
	}
	if right != (ctrl.Down{Use: ctrl.UseD, Xd: 0}) {
		t.Errorf("right word %v, want [d,null] xd=0", right)
	}
	if st := e.stored[2]; st.M != 0 || st.SL != 1 {
		t.Errorf("stored after configure: %v", st)
	}
	if cfg := e.switches[2].Config().String(); cfg != "[l->r]" {
		t.Errorf("config %v, want [l->r]", cfg)
	}
}

func TestConfigureUseSFromLeft(t *testing.T) {
	e := mustEngine(t, "((.)(.))")
	e.phase1()
	// Ask node 2 for its 0th pending source: that is PE 0 (the unmatched
	// one), in the left subtree.
	left, right, err := e.configure(2, ctrl.Down{Use: ctrl.UseS, Xs: 0})
	if err != nil {
		t.Fatal(err)
	}
	if left != (ctrl.Down{Use: ctrl.UseS, Xs: 0}) {
		t.Errorf("left %v", left)
	}
	if right != (ctrl.Down{Use: ctrl.UseNone}) {
		t.Errorf("right %v", right)
	}
	if st := e.stored[2]; st.SL != 0 || st.M != 1 {
		t.Errorf("stored %v: SL must drain, M must survive", st)
	}
	if cfg := e.switches[2].Config().Driver(3); cfg != 1 { // P output driven by L
		t.Errorf("p_o driver = %v", cfg)
	}
}

func TestConfigureUseSFromRightSchedulesMatch(t *testing.T) {
	// Build a set where a switch passes a right-subtree source upward and
	// can simultaneously schedule its own matched pair. N=8: (0,2) is
	// matched at node 2 (span [0,4)); (3,6) passes its source up from node
	// 2's right subtree (right up-passes are always disjoint from the
	// matched pairs — a containing span would cross).
	s := comm.NewSet(8, comm.Comm{Src: 0, Dst: 2}, comm.Comm{Src: 3, Dst: 6})
	if !s.IsWellNested() {
		t.Fatal("test set must be well nested")
	}
	e, err := New(topology.MustNew(8), s)
	if err != nil {
		t.Fatal(err)
	}
	e.phase1()
	// Node 2: left child has source 0, right child has destination 2 and
	// source 3. M = min(S_L=1, D_R=1) = 1, SR = 1.
	if st := e.stored[2]; st.M != 1 || st.SR != 1 || st.SL != 0 {
		t.Fatalf("node 2 stored %v", st)
	}
	// Parent demands pending source 0: SL=0 so it comes from the right
	// subtree; l_i/r_o are free so the matched pair rides along.
	left, right, err := e.configure(2, ctrl.Down{Use: ctrl.UseS, Xs: 0})
	if err != nil {
		t.Fatal(err)
	}
	if left != (ctrl.Down{Use: ctrl.UseS, Xs: 0}) {
		t.Errorf("left %v, want [s,null] xs=0", left)
	}
	if right != (ctrl.Down{Use: ctrl.UseSD, Xs: 0, Xd: 0}) {
		t.Errorf("right %v, want [s,d] xs=0 xd=0", right)
	}
	if st := e.stored[2]; st.M != 0 || st.SR != 0 {
		t.Errorf("stored %v: both demands must drain", st)
	}
	cfg := e.switches[2].Config().String()
	if cfg != "[l->r r->p]" {
		t.Errorf("config %s, want [l->r r->p]", cfg)
	}
}

func TestConfigureSelectorOutOfRange(t *testing.T) {
	e := mustEngine(t, "((.)(.))")
	e.phase1()
	if _, _, err := e.configure(2, ctrl.Down{Use: ctrl.UseS, Xs: 5}); err == nil {
		t.Error("xs out of range: want error")
	}
	if _, _, err := e.configure(2, ctrl.Down{Use: ctrl.UseD, Xd: 5}); err == nil {
		t.Error("xd out of range: want error")
	}
	if _, _, err := e.configure(2, ctrl.Down{Use: ctrl.Use(9)}); err == nil {
		t.Error("bad use: want error")
	}
}

func TestNestedChainOptimalRounds(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 16} {
		s, err := comm.NestedChain(64, w)
		if err != nil {
			t.Fatal(err)
		}
		tr := topology.MustNew(64)
		e, err := New(tr, s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if res.Rounds != w {
			t.Fatalf("w=%d: rounds=%d", w, res.Rounds)
		}
		if err := res.Schedule.VerifyOptimal(tr); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		// Theorem 8: the chain is the adversarial workload (every pair
		// matched at the root, all paths overlapping) yet every switch
		// stays within a constant budget.
		if got := res.Report.MaxUnits(); got > 6 {
			t.Errorf("w=%d: max units per switch = %d, want O(1) (<=6)", w, got)
		}
		if got := res.Report.MaxAlternations(); got > 4 {
			t.Errorf("w=%d: max alternations = %d", w, got)
		}
	}
}

// The paper's headline contrast: under stateless (reconfigure-every-round)
// operation the hottest switch pays Θ(w); under PADR it pays O(1).
func TestStatelessAblation(t *testing.T) {
	s, err := comm.NestedChain(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr := topology.MustNew(64)

	run := func(mode power.Mode) *Result {
		e, err := New(tr, s.Clone(), WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	stateful := run(power.Stateful)
	stateless := run(power.Stateless)
	if stateful.Rounds != stateless.Rounds {
		t.Fatalf("mode must not change the schedule: %d vs %d rounds", stateful.Rounds, stateless.Rounds)
	}
	if stateful.Report.MaxUnits() > 6 {
		t.Errorf("stateful max units = %d, want O(1)", stateful.Report.MaxUnits())
	}
	if stateless.Report.MaxUnits() < 16 {
		t.Errorf("stateless max units = %d, want >= w = 16", stateless.Report.MaxUnits())
	}
}

func TestObserverCallbacks(t *testing.T) {
	var rounds, words, configs, dones int
	res, err := mustEngine(t, "(())", WithObserver(Observer{
		RoundStart: func(int) { rounds++ },
		WordSent:   func(_, _ topology.Node, _ ctrl.Down) { words++ },
		Configured: func(_ topology.Node, _ xbar.Config) { configs++ },
		RoundDone:  func(_ int, performed []comm.Comm) { dones += len(performed) },
	})).Run()
	if err != nil {
		t.Fatal(err)
	}
	if configs == 0 {
		t.Error("Configured never fired")
	}
	if rounds != res.Rounds {
		t.Errorf("RoundStart fired %d times for %d rounds", rounds, res.Rounds)
	}
	// Every round sends one word to every non-root node: 2N-2 = 6 words.
	if want := res.Rounds * 6; words != want {
		t.Errorf("WordSent fired %d times, want %d", words, want)
	}
	if dones != 2 {
		t.Errorf("RoundDone reported %d comms, want 2", dones)
	}
}

func TestWordAndByteCounts(t *testing.T) {
	res := mustRun(t, "(())")
	n := 4
	if want := 2*n - 2; res.UpWords != want {
		t.Errorf("UpWords = %d, want %d", res.UpWords, want)
	}
	if want := res.Rounds * (2*n - 2); res.DownWords != want {
		t.Errorf("DownWords = %d, want %d", res.DownWords, want)
	}
	if res.UpBytes != res.UpWords*ctrl.UpWordBytes {
		t.Errorf("UpBytes = %d", res.UpBytes)
	}
	if res.DownBytes != res.DownWords*ctrl.DownWordBytes {
		t.Errorf("DownBytes = %d", res.DownBytes)
	}
	if res.MaxStoredBytes != ctrl.StoredWordBytes {
		t.Errorf("MaxStoredBytes = %d", res.MaxStoredBytes)
	}
	if res.ActiveDownWords <= 0 || res.ActiveDownWords > res.DownWords {
		t.Errorf("ActiveDownWords = %d out of range", res.ActiveDownWords)
	}
}

// End-to-end property: every random well-nested set schedules in exactly
// `width` rounds with a verifier-approved schedule and O(1) per-switch
// power.
func TestRandomSetsProperty(t *testing.T) {
	trees := map[int]*topology.Tree{}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(5)) // 4..64
		m := rng.Intn(n/2 + 1)
		s, err := comm.RandomWellNested(rng, n, m)
		if err != nil {
			return false
		}
		tr := trees[n]
		if tr == nil {
			tr = topology.MustNew(n)
			trees[n] = tr
		}
		e, err := New(tr, s)
		if err != nil {
			return false
		}
		res, err := e.Run()
		if err != nil {
			t.Logf("seed %d set %s: %v", seed, s, err)
			return false
		}
		if err := res.Schedule.VerifyOptimal(tr); err != nil {
			t.Logf("seed %d set %s: %v", seed, s, err)
			return false
		}
		if res.Report.MaxUnits() > 6 || res.Report.MaxAlternations() > 4 {
			t.Logf("seed %d set %s: power blowup %s", seed, s, res.Report.Summary())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Fatal(err)
	}
}

// Larger adversarial shapes at a fixed seed, for regression visibility.
func TestWorkloadZoo(t *testing.T) {
	tr := topology.MustNew(128)
	zoo := map[string]*comm.Set{}
	add := func(name string, s *comm.Set, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		zoo[name] = s
	}
	rng := rand.New(rand.NewSource(12345))
	chain, err := comm.NestedChain(128, 32)
	add("chain32", chain, err)
	compact, err := comm.CompactChain(128, 32)
	add("compact32", compact, err)
	forest, err := comm.SiblingForest(128, 8, 5)
	add("forest8x5", forest, err)
	stair, err := comm.Staircase(128, 40)
	add("staircase40", stair, err)
	pairs, err := comm.DisjointPairs(128, 64)
	add("pairs64", pairs, err)
	rand1, err := comm.RandomWellNested(rng, 128, 60)
	add("random60", rand1, err)

	for name, s := range zoo {
		e, err := New(tr, s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Schedule.VerifyOptimal(tr); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if res.Report.MaxUnits() > 6 {
			t.Errorf("%s: max units %d", name, res.Report.MaxUnits())
		}
	}
}

func TestScheduleOutermostFirstAtRoot(t *testing.T) {
	// With a pure chain every communication is matched at the root and the
	// algorithm must schedule outermost first: (0,15), then (1,14), ...
	s, err := comm.NestedChain(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(topology.MustNew(16), s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := comm.Comm{Src: i, Dst: 15 - i}
		if len(res.Schedule.Rounds[i]) != 1 || res.Schedule.Rounds[i][0] != want {
			t.Fatalf("round %d = %v, want [%v]", i, res.Schedule.Rounds[i], want)
		}
	}
}

func TestSummaryOutput(t *testing.T) {
	res := mustRun(t, "(())")
	if !strings.Contains(res.Report.Summary(), "padr/stateful") {
		t.Errorf("Summary = %q", res.Report.Summary())
	}
}

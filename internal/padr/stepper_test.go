package padr

import (
	"reflect"
	"testing"

	"cst/internal/comm"
	"cst/internal/topology"
)

func TestStepperMatchesRun(t *testing.T) {
	s := comm.MustParse("((.)((.)..).)(.)")
	tr := topology.MustNew(16)

	e, err := New(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}

	st, err := NewStepper(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if st.Width() != ref.Width {
		t.Fatalf("width %d vs %d", st.Width(), ref.Width)
	}
	var rounds [][]comm.Comm
	for {
		performed, done, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		rounds = append(rounds, performed)
	}
	if len(rounds) != ref.Rounds {
		t.Fatalf("stepper ran %d rounds, Run ran %d", len(rounds), ref.Rounds)
	}
	for i := range rounds {
		if !reflect.DeepEqual(commKey(rounds[i]), commKey(ref.Schedule.Rounds[i])) {
			t.Fatalf("round %d differs: %v vs %v", i, rounds[i], ref.Schedule.Rounds[i])
		}
	}
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.TotalUnits() != ref.Report.TotalUnits() {
		t.Fatalf("units %d vs %d", res.Report.TotalUnits(), ref.Report.TotalUnits())
	}
	if st.Round() != ref.Rounds {
		t.Fatalf("Round() = %d", st.Round())
	}
	// Result is idempotent; Next after Result reports done.
	again, err := st.Result()
	if err != nil || again != res {
		t.Fatal("Result must be idempotent")
	}
	if _, done, _ := st.Next(); !done {
		t.Fatal("Next after Result must report done")
	}
}

func TestStepperEarlyFinish(t *testing.T) {
	s := comm.MustParse("(((())))")
	tr := topology.MustNew(8)
	st, err := NewStepper(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	// Take one manual round, then let Result finish the rest.
	if _, done, err := st.Next(); err != nil || done {
		t.Fatalf("first round: done=%v err=%v", done, err)
	}
	res, err := st.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if err := res.Schedule.VerifyOptimal(tr); err != nil {
		t.Fatal(err)
	}
}

func TestStepperEmptySet(t *testing.T) {
	st, err := NewStepper(topology.MustNew(4), comm.NewSet(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, done, err := st.Next(); !done || err != nil {
		t.Fatalf("empty set: done=%v err=%v", done, err)
	}
	res, err := st.Result()
	if err != nil || res.Rounds != 0 {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestStepperRejectsReusedEngineInputs(t *testing.T) {
	s := comm.NewSet(4, comm.Comm{Src: 0, Dst: 2}, comm.Comm{Src: 1, Dst: 3})
	if _, err := NewStepper(topology.MustNew(4), s); err == nil {
		t.Fatal("crossing set must be rejected")
	}
}

func commKey(cs []comm.Comm) map[comm.Comm]bool {
	m := map[comm.Comm]bool{}
	for _, c := range cs {
		m[c] = true
	}
	return m
}

package padr_test

import (
	"testing"

	"cst/internal/comm"
	"cst/internal/deliver"
	"cst/internal/padr"
	"cst/internal/topology"
)

// Exhaustive verification at small scale: run the engine on EVERY
// well-nested set over 8 PEs (all 323 of them) and check the full claim
// stack — exact-width rounds, verifier-approved compatibility, token-level
// data-plane delivery, and the power bound. Not a sample: the complete
// instance space.
func TestExhaustiveAllSetsN8(t *testing.T) {
	tr := topology.MustNew(8)
	count := 0
	err := comm.EnumerateWellNested(8, 4, func(s *comm.Set) error {
		count++
		var rec deliver.Recorder
		e, err := padr.New(tr, s, padr.WithObserver(rec.Observer()))
		if err != nil {
			t.Fatalf("set %s: %v", s, err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("set %s: %v", s, err)
		}
		if err := res.Schedule.VerifyOptimal(tr); err != nil {
			t.Fatalf("set %s: %v", s, err)
		}
		if err := rec.Verify(tr); err != nil {
			t.Fatalf("set %s: %v", s, err)
		}
		if res.Report.MaxUnits() > 4 {
			t.Fatalf("set %s: max units %d", s, res.Report.MaxUnits())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 323 {
		t.Fatalf("verified %d sets, want 323", count)
	}
}

// The same stack over every set with up to 3 communications on 16 PEs
// (~44k instances), both selection rules. Data-plane replay is skipped here
// for speed; E5 and the N=8 sweep cover it.
func TestExhaustiveSmallSetsN16(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep skipped in -short mode")
	}
	tr := topology.MustNew(16)
	count := 0
	err := comm.EnumerateWellNested(16, 3, func(s *comm.Set) error {
		count++
		for _, sel := range []padr.Selection{padr.Greedy, padr.Conservative} {
			e, err := padr.New(tr, s.Clone(), padr.WithSelection(sel))
			if err != nil {
				t.Fatalf("set %s: %v", s, err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatalf("set %s sel=%s: %v", s, sel, err)
			}
			if err := res.Schedule.Verify(tr); err != nil {
				t.Fatalf("set %s sel=%s: %v", s, sel, err)
			}
			if sel == padr.Greedy && res.Rounds != res.Width {
				t.Fatalf("set %s: greedy rounds %d != width %d", s, res.Rounds, res.Width)
			}
			if res.Report.MaxUnits() > 4 {
				t.Fatalf("set %s sel=%s: max units %d", s, sel, res.Report.MaxUnits())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count < 40000 {
		t.Fatalf("verified only %d sets", count)
	}
	t.Logf("exhaustively verified %d instances under both selection rules", count)
}

package padr

import (
	"math/rand"
	"testing"

	"cst/internal/comm"
	"cst/internal/topology"
)

// pathSwitchCount returns how many switches lie on the circuit of c.
func pathSwitchCount(t *testing.T, tr *topology.Tree, c comm.Comm) int {
	t.Helper()
	n, err := tr.HopCount(c.Src, c.Dst)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// Conservation: Phase 1 plants, at each switch on a communication's path,
// exactly one unit of demand for that communication; each round drains
// exactly one unit per path switch of every communication it performs.
// Globally the per-switch stored totals start at the sum of path lengths,
// decrease each round by the path lengths of the scheduled communications,
// and reach zero.
func TestDemandConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 1 << (2 + rng.Intn(5))
		tr := topology.MustNew(n)
		s, err := comm.RandomWellNested(rng, n, rng.Intn(n/2+1))
		if err != nil {
			t.Fatal(err)
		}

		expectedTotal := 0
		for _, c := range s.Comms {
			expectedTotal += pathSwitchCount(t, tr, c)
		}

		var eng *Engine
		storedSum := func() int {
			sum := 0
			for _, st := range eng.stored {
				sum += st.Total()
			}
			return sum
		}
		remaining := expectedTotal
		checkedPlanting := false
		eng, err = New(tr, s, WithObserver(Observer{
			RoundStart: func(round int) {
				if round == 0 {
					// Phase 1 just finished: the planted demand must equal
					// the sum of path lengths.
					if got := storedSum(); got != expectedTotal {
						t.Errorf("set %s: planted %d demand units, path lengths sum to %d", s, got, expectedTotal)
					}
					checkedPlanting = true
				}
			},
			RoundDone: func(round int, performed []comm.Comm) {
				for _, c := range performed {
					remaining -= pathSwitchCount(t, tr, c)
				}
				if got := storedSum(); got != remaining {
					t.Errorf("set %s round %d: stored total %d, want %d", s, round, got, remaining)
				}
			},
		}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatalf("set %s: %v", s, err)
		}
		if s.Len() > 0 && !checkedPlanting {
			t.Fatalf("set %s: planting check never ran", s)
		}
		if remaining != 0 {
			t.Fatalf("set %s: demand not drained: %d", s, remaining)
		}
	}
}

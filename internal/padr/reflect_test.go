package padr

import (
	"testing"

	"cst/internal/comm"
	"cst/internal/topology"
	"cst/internal/xbar"
)

func freshSwitches(t *topology.Tree) map[topology.Node]*xbar.Switch {
	m := map[topology.Node]*xbar.Switch{}
	t.EachSwitch(func(n topology.Node) { m[n] = xbar.NewSwitch() })
	return m
}

// A mirrored run must land its connections on the reflected physical
// switches with l and r exchanged: scheduling the mirror of leftward
// 7->4 (i.e. rightward 0->3 on the mirrored line) must configure the
// physical switches serving leaves 4..7.
func TestReflectedRunBillsPhysicalSwitches(t *testing.T) {
	tr := topology.MustNew(8)
	switches := freshSwitches(tr)

	leftward := comm.NewSet(8, comm.Comm{Src: 7, Dst: 4})
	mirrored := leftward.Mirror() // 0 -> 3
	if !mirrored.IsWellNested() {
		t.Fatal("mirrored set must be well nested")
	}
	e, err := New(tr, mirrored, WithReflectedCrossbars(switches))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	// The physical leftward circuit 7->4 uses: node 7 (r->p), node 3
	// (r->l), node 6 (p->l). Node 2's subtree must stay untouched.
	if got := switches[7].Config().String(); got != "[r->p]" {
		t.Errorf("node 7 config = %s, want [r->p]", got)
	}
	if got := switches[3].Config().String(); got != "[r->l]" {
		t.Errorf("node 3 config = %s, want [r->l]", got)
	}
	if got := switches[6].Config().String(); got != "[p->l]" {
		t.Errorf("node 6 config = %s, want [p->l]", got)
	}
	for _, n := range []topology.Node{1, 2, 4, 5} {
		if switches[n].Units() != 0 {
			t.Errorf("node %d touched (%d units) by a circuit confined to the right half", n, switches[n].Units())
		}
	}
}

// Reflection is an involution on nodes and preserves levels.
func TestTreeReflect(t *testing.T) {
	tr := topology.MustNew(16)
	for n := topology.Node(1); int(n) < 32; n++ {
		r := tr.Reflect(n)
		if !tr.Valid(r) {
			t.Fatalf("Reflect(%d) = %d invalid", n, r)
		}
		if tr.Depth(r) != tr.Depth(n) {
			t.Fatalf("Reflect(%d) changed depth", n)
		}
		if tr.Reflect(r) != n {
			t.Fatalf("Reflect not an involution at %d", n)
		}
	}
	// Root maps to itself; leaf i maps to leaf N-1-i.
	if tr.Reflect(1) != 1 {
		t.Fatal("root must be its own mirror")
	}
	for pe := 0; pe < 16; pe++ {
		if tr.Reflect(tr.Leaf(pe)) != tr.Leaf(15-pe) {
			t.Fatalf("leaf %d reflects wrong", pe)
		}
	}
	// Reflection swaps children: Reflect(Left(u)) == Right(Reflect(u)).
	tr.EachSwitch(func(u topology.Node) {
		if tr.Reflect(tr.Left(u)) != tr.Right(tr.Reflect(u)) {
			t.Fatalf("reflection does not swap children at %d", u)
		}
	})
}

// Opposite-orientation circuits that share no physical resources must not
// charge each other: a steady mixed pattern in disjoint subtrees costs one
// connection per switch regardless of how many times it repeats.
func TestSharedCrossbarsAcrossOrientations(t *testing.T) {
	tr := topology.MustNew(16)
	switches := freshSwitches(tr)
	rightSet := comm.NewSet(16, comm.Comm{Src: 0, Dst: 3})  // left subtree
	leftSet := comm.NewSet(16, comm.Comm{Src: 15, Dst: 12}) // right subtree, leftward
	mirrored := leftSet.Mirror()                            // 0->3 on the mirrored line
	for cycle := 0; cycle < 5; cycle++ {
		e, err := New(tr, rightSet.Clone(), WithCrossbars(switches))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		e, err = New(tr, mirrored.Clone(), WithReflectedCrossbars(switches))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	maxUnits := 0
	for _, sw := range switches {
		if sw.Units() > maxUnits {
			maxUnits = sw.Units()
		}
	}
	if maxUnits != 1 {
		t.Fatalf("steady disjoint pattern: max units = %d, want 1", maxUnits)
	}
}

package padr

import (
	"math/rand"
	"testing"

	"cst/internal/comm"
	"cst/internal/topology"
)

// Empirical conjecture about the conservative rule's round overhead: on
// every input we have observed, rounds <= width + maxDepth. Intuition: a
// matched pair waits only behind the outer communications that contain it,
// and the containment chains have length at most the nesting depth. This is
// NOT proved — the test pins the behaviour on a deterministic corpus so a
// regression (or a counterexample found by future fuzzing) surfaces loudly.
func TestConservativeOverheadConjecture(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	worstExtra, worstDepth := 0, 0
	for trial := 0; trial < 300; trial++ {
		n := 1 << (2 + rng.Intn(6)) // 4..128
		tr := topology.MustNew(n)
		s, err := comm.RandomWellNested(rng, n, rng.Intn(n/2+1))
		if err != nil {
			t.Fatal(err)
		}
		depth, err := s.MaxDepth()
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(tr, s, WithSelection(Conservative))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("set %s: %v", s, err)
		}
		extra := res.Rounds - res.Width
		if extra > depth {
			t.Fatalf("conjecture violated on %s: rounds=%d width=%d depth=%d", s, res.Rounds, res.Width, depth)
		}
		if extra > worstExtra {
			worstExtra, worstDepth = extra, depth
		}
	}
	t.Logf("worst overhead observed: %d extra rounds (set depth %d)", worstExtra, worstDepth)
}

package padr

import (
	"errors"

	"cst/internal/fault"
	"cst/internal/obs"
)

// WithRegistry publishes the engine's cst_padr_* metric series to r. A nil
// registry (the default) leaves the engine fully uninstrumented: every
// metric handle is nil and every operation on it is a predictable nil
// check, so the hot scheduling path pays nothing.
func WithRegistry(r *obs.Registry) Option {
	return func(e *Engine) { e.reg = r }
}

// WithTracer streams structured JSONL events (run/round spans, per-switch
// reconfigurations, per-link control words) to t. A nil tracer no-ops.
// The tracer complements — and does not replace — the Observer callbacks:
// Observer delivers typed in-process hooks, the tracer a serialized record.
func WithTracer(t *obs.Tracer) Option {
	return func(e *Engine) { e.tracer = t }
}

// engineMetrics holds the engine's resolved metric handles. It is a value
// type so the all-nil zero value (from a nil registry) is usable directly:
// e.met.rounds.Inc() is always safe.
type engineMetrics struct {
	runs         *obs.Counter
	errs         *obs.Counter
	rounds       *obs.Counter
	comms        *obs.Counter
	upWords      *obs.Counter
	downWords    *obs.Counter
	activeDown   *obs.Counter
	units        *obs.Counter
	alternations *obs.Counter
	switches     *obs.Counter
	width        *obs.Gauge
	roundLatency *obs.Histogram
	runLatency   *obs.Histogram
}

// newEngineMetrics resolves every cst_padr_* series against r (nil-safe).
// All series are registered up front so a served /metrics endpoint exposes
// the full schema from the first scrape, even before any run completes.
func newEngineMetrics(r *obs.Registry) engineMetrics {
	return engineMetrics{
		runs:         r.Counter("cst_padr_runs_total", "completed or attempted sequential CSA runs"),
		errs:         r.Counter("cst_padr_errors_total", "sequential CSA runs that failed"),
		rounds:       r.Counter("cst_padr_rounds_total", "Phase 2 rounds executed by the sequential engine"),
		comms:        r.Counter("cst_padr_comms_scheduled_total", "communications submitted to the sequential engine"),
		upWords:      r.Counter("cst_padr_phase1_words_total", "Phase 1 control words sent up the tree"),
		downWords:    r.Counter("cst_padr_phase2_words_total", "Phase 2 control words sent down the tree"),
		activeDown:   r.Counter("cst_padr_phase2_active_words_total", "Phase 2 control words other than [null,null]"),
		units:        r.Counter("cst_padr_power_units_total", "power units spent by switch reconfigurations"),
		alternations: r.Counter("cst_padr_alternations_total", "summed per-port connect/disconnect alternations"),
		switches:     r.Counter("cst_padr_switches_total", "switch instances driven, summed over runs (for per-switch averages)"),
		width:        r.Gauge("cst_padr_width", "link width of the most recent communication set"),
		roundLatency: r.Histogram("cst_padr_round_latency_seconds", "wall time per Phase 2 round", nil),
		runLatency:   r.Histogram("cst_padr_run_duration_seconds", "wall time per full run (Phase 1 + Phase 2)", nil),
	}
}

// meterTotals sums the cumulative power meters across the engine's
// switches. With WithCrossbars the meters carry charge from earlier runs,
// so callers diff against a baseline taken in prepare to attribute only
// this run's spend.
func (e *Engine) meterTotals() (units, alternations int) {
	for _, sw := range e.switches {
		if sw == nil {
			continue
		}
		units += sw.Units()
		alternations += sw.TotalAlternations()
	}
	return units, alternations
}

// fail routes an engine error through the error counter and tracer before
// returning it. Gauges describing the in-flight run are reset so a scrape
// after a failed run does not report its partial state as live. When the
// injector fired this run, the failure is attributed to injection: counted
// as observed, and — if no earlier layer already pinned a typed fault —
// wrapped as an ErrCorruptWord that records the round where the downstream
// inconsistency surfaced.
func (e *Engine) fail(err error) error {
	if e.inj.Fired() {
		e.inj.Observe()
		var fe *fault.Error
		if !errors.As(err, &fe) {
			err = &fault.Error{Engine: "padr", Round: e.curRound, Kind: fault.ErrCorruptWord, Detail: err}
		}
	}
	e.met.errs.Inc()
	e.met.width.Set(0)
	if e.tracer != nil {
		// A typed fault carries the dying round and implicated node; stamp
		// them on the event so a replayed audit can name the culprit without
		// parsing the error text.
		ev := obs.Event{Type: "run.error", Engine: "padr", Round: -1, Err: err.Error()}
		var fe *fault.Error
		if errors.As(err, &fe) {
			ev.Round = fe.Round
			ev.Node = int(fe.Node)
		}
		e.tracer.Emit(ev)
	}
	return err
}

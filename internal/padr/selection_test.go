package padr

import (
	"math/rand"
	"testing"

	"cst/internal/comm"
	"cst/internal/topology"
)

func TestSelectionString(t *testing.T) {
	if Greedy.String() != "greedy" || Conservative.String() != "conservative" {
		t.Fatal("Selection.String wrong")
	}
	var zero Selection
	if zero != Greedy {
		t.Fatal("the zero Selection must be Greedy (the literal paper algorithm)")
	}
}

// The minimal set on which the two rules diverge: ..(((()(....)))) makes
// the greedy rule schedule the innermost pair (5,6) in round 0 (fragmenting
// node 10's demand sequence) while the conservative rule defers it behind
// the outer (4,13).
func TestSelectionDivergenceMinimalCase(t *testing.T) {
	tr := topology.MustNew(16)
	s := comm.MustParse("..(((()(....))))")

	greedyEng, err := New(tr, s.Clone(), WithSelection(Greedy))
	if err != nil {
		t.Fatal(err)
	}
	gres, err := greedyEng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if gres.Rounds != gres.Width {
		t.Fatalf("greedy must be width-optimal: %d vs %d", gres.Rounds, gres.Width)
	}
	// Greedy schedules (5,6) in round 0 alongside the outermost pair.
	foundEarly := false
	for _, c := range gres.Schedule.Rounds[0] {
		if c == (comm.Comm{Src: 5, Dst: 6}) {
			foundEarly = true
		}
	}
	if !foundEarly {
		t.Fatalf("greedy should start (5,6) in round 0: %v", gres.Schedule.Rounds[0])
	}

	consEng, err := New(tr, s.Clone(), WithSelection(Conservative))
	if err != nil {
		t.Fatal(err)
	}
	cres, err := consEng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := cres.Schedule.Verify(tr); err != nil {
		t.Fatal(err)
	}
	// Conservative defers (5,6) until the outer (4,13) has cleared node 10.
	for _, c := range cres.Schedule.Rounds[0] {
		if c == (comm.Comm{Src: 5, Dst: 6}) {
			t.Fatalf("conservative must defer (5,6): %v", cres.Schedule.Rounds[0])
		}
	}
	if cres.Report.Algorithm != "padr-conservative" {
		t.Fatalf("report name %q", cres.Report.Algorithm)
	}
	if gres.Report.Algorithm != "padr" {
		t.Fatalf("report name %q", gres.Report.Algorithm)
	}
}

// The decoded adversarial instance from DESIGN.md §6a: the switch over
// [16,24) holds two matched pairs plus down-passes to both children, and
// the enclosing chain's schedule interleaves the demands on its r_o output.
// This regression pins the mechanism behind the ≈log N churn growth.
func TestChurnMechanismInstance(t *testing.T) {
	tr := topology.MustNew(32)
	s := comm.MustParse("......(....((...).(()))()......)")
	e, err := New(tr, s, WithSelection(Greedy))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.VerifyOptimal(tr); err != nil {
		t.Fatal(err)
	}
	// The hot switch spans [16,24); its units exceed the chain bound of 2.
	var hot topology.Node
	tr.EachSwitch(func(n topology.Node) {
		lo, hi := tr.Span(n)
		if lo == 16 && hi == 24 {
			hot = n
		}
	})
	units := 0
	for _, sw := range res.Report.Switches {
		if sw.Node == hot {
			units = sw.Units
		}
	}
	if units < 4 {
		t.Fatalf("hot switch units = %d; the interleaving mechanism should force >= 4", units)
	}
	// The conservative rule tames the same instance.
	ce, err := New(tr, s.Clone(), WithSelection(Conservative))
	if err != nil {
		t.Fatal(err)
	}
	cres, err := ce.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cres.Report.MaxUnits() > 4 {
		t.Fatalf("conservative max units = %d on the churn instance", cres.Report.MaxUnits())
	}
}

// The conservative rule must still produce complete, compatible schedules
// with bounded overhead and O(1) per-switch power on random inputs.
func TestConservativeValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 80; trial++ {
		n := 1 << (2 + rng.Intn(5))
		tr := topology.MustNew(n)
		s, err := comm.RandomWellNested(rng, n, rng.Intn(n/2+1))
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(tr, s, WithSelection(Conservative))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("set %s: %v", s, err)
		}
		if err := res.Schedule.Verify(tr); err != nil {
			t.Fatalf("set %s: %v", s, err)
		}
		if res.Rounds < res.Width {
			t.Fatalf("set %s: %d rounds beats the width bound %d", s, res.Rounds, res.Width)
		}
		if res.Rounds > res.Width+n {
			t.Fatalf("set %s: overhead blowup: %d rounds for width %d", s, res.Rounds, res.Width)
		}
		if res.Report.MaxUnits() > 4 {
			t.Fatalf("set %s: conservative max units = %d, want <= 4", s, res.Report.MaxUnits())
		}
	}
}

// On chain workloads the rules coincide exactly.
func TestSelectionAgreesOnChains(t *testing.T) {
	for _, w := range []int{1, 8, 32} {
		s, err := comm.NestedChain(128, w)
		if err != nil {
			t.Fatal(err)
		}
		tr := topology.MustNew(128)
		run := func(sel Selection) *Result {
			e, err := New(tr, s.Clone(), WithSelection(sel))
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		g, c := run(Greedy), run(Conservative)
		if g.Rounds != c.Rounds || g.Rounds != w {
			t.Fatalf("w=%d: rounds %d vs %d", w, g.Rounds, c.Rounds)
		}
		if g.Report.TotalUnits() != c.Report.TotalUnits() {
			t.Fatalf("w=%d: units %d vs %d", w, g.Report.TotalUnits(), c.Report.TotalUnits())
		}
	}
}

package padr

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"cst/internal/comm"
	"cst/internal/fault"
	"cst/internal/topology"
)

// deltaDigest is the bit-identity surface of a run: everything Apply
// promises to reproduce exactly. UpWords/UpBytes are excluded by contract
// (Apply re-floats only dirty words — that's the savings), as are the power
// report (crossbars carry state across runs by design) and Schedule.Set
// order (swap-remove).
type deltaDigest struct {
	rounds     [][]comm.Comm
	initial    string
	width      int
	nrounds    int
	downWords  int
	downBytes  int
	activeDown int
	maxStored  int
}

func deltaDigestOf(t *testing.T, r *Result) deltaDigest {
	t.Helper()
	// Deep-copy the rounds: they alias the engine's comm arena, which the
	// next run on the same engine overwrites.
	rounds := make([][]comm.Comm, len(r.Schedule.Rounds))
	for i, rd := range r.Schedule.Rounds {
		rounds[i] = append([]comm.Comm(nil), rd...)
	}
	var initial string
	for _, st := range r.InitialStored {
		initial += st.String() + ";"
	}
	return deltaDigest{
		rounds:     rounds,
		initial:    initial,
		width:      r.Width,
		nrounds:    r.Rounds,
		downWords:  r.DownWords,
		downBytes:  r.DownBytes,
		activeDown: r.ActiveDownWords,
		maxStored:  r.MaxStoredBytes,
	}
}

// genDelta derives a random valid mutation of cur: up to 3 removes of
// existing communications and up to 3 rejection-sampled adds that keep the
// set oriented well-nested. Returns the delta and the mutated mirror.
func genDelta(rng *rand.Rand, n int, cur []comm.Comm) (Delta, []comm.Comm) {
	next := append([]comm.Comm(nil), cur...)
	var d Delta
	for j, r := 0, rng.Intn(4); j < r && len(next) > 0; j++ {
		i := rng.Intn(len(next))
		d.Remove = append(d.Remove, next[i])
		next = append(next[:i], next[i+1:]...)
	}
	for j, a := 0, rng.Intn(4); j < a; j++ {
		for attempt := 0; attempt < 100; attempt++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src >= dst {
				continue
			}
			cand := comm.Comm{Src: src, Dst: dst}
			trial := &comm.Set{N: n, Comms: append(append([]comm.Comm(nil), next...), cand)}
			if trial.Validate() != nil || !trial.IsWellNested() {
				continue
			}
			d.Add = append(d.Add, cand)
			next = append(next, cand)
			break
		}
	}
	return d, next
}

// scratchDigest runs a fresh engine on the given communications and
// returns its digest — the ground truth Apply must reproduce bit for bit.
func scratchDigest(t *testing.T, tr *topology.Tree, n int, comms []comm.Comm, opts ...Option) deltaDigest {
	t.Helper()
	s := &comm.Set{N: n, Comms: append([]comm.Comm(nil), comms...)}
	eng, err := New(tr, s, opts...)
	if err != nil {
		t.Fatalf("scratch New: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("scratch Run: %v", err)
	}
	return deltaDigestOf(t, res)
}

// TestDeltaDifferential is the differential suite required by the issue:
// 500 seeded mutation streams, each a chain of Apply calls whose every
// result must be bit-identical to a from-scratch run on the mutated set.
// A second warm engine follows the same stream through ApplyRounds to pin
// the light path's round counts.
func TestDeltaDifferential(t *testing.T) {
	ns := []int{8, 16, 32, 64}
	for seed := 0; seed < 500; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := ns[seed%len(ns)]
		init, err := comm.RandomWellNested(rng, n, 1+rng.Intn(n/4+1))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var opts []Option
		if seed%7 == 0 {
			opts = append(opts, WithSelection(Conservative))
		}
		tr, err := topology.New(n)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(tr, init, opts...)
		if err != nil {
			t.Fatalf("seed %d: New: %v", seed, err)
		}
		light, err := New(tr, init, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatalf("seed %d: initial Run: %v", seed, err)
		}
		if _, err := light.RunRounds(); err != nil {
			t.Fatalf("seed %d: initial RunRounds: %v", seed, err)
		}
		cur := append([]comm.Comm(nil), init.Comms...)
		for step := 0; step < 3; step++ {
			var d Delta
			d, cur = genDelta(rng, n, cur)
			res, err := eng.Apply(d)
			if err != nil {
				t.Fatalf("seed %d step %d: Apply(%+v): %v", seed, step, d, err)
			}
			if !eng.Ready() {
				t.Fatalf("seed %d step %d: engine not Ready after successful Apply", seed, step)
			}
			got := deltaDigestOf(t, res)
			want := scratchDigest(t, tr, n, cur, opts...)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d step %d: delta run diverged from scratch\n got: %+v\nwant: %+v", seed, step, got, want)
			}
			rounds, err := light.ApplyRounds(d)
			if err != nil {
				t.Fatalf("seed %d step %d: ApplyRounds: %v", seed, step, err)
			}
			if rounds != want.nrounds {
				t.Fatalf("seed %d step %d: ApplyRounds=%d, scratch=%d", seed, step, rounds, want.nrounds)
			}
		}
	}
}

// TestDeltaEmptyAndClearAll covers the two boundary deltas: the empty
// delta re-runs the same set, and a delta removing every communication
// yields a legal zero-round schedule — both bit-identical to scratch.
func TestDeltaEmptyAndClearAll(t *testing.T) {
	n := 16
	tr, err := topology.New(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := comm.NestedChain(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Apply(Delta{})
	if err != nil {
		t.Fatalf("empty delta: %v", err)
	}
	want := scratchDigest(t, tr, n, s.Comms)
	if got := deltaDigestOf(t, res); !reflect.DeepEqual(got, want) {
		t.Fatalf("empty delta diverged:\n got: %+v\nwant: %+v", got, want)
	}
	res, err = eng.Apply(Delta{Remove: append([]comm.Comm(nil), s.Comms...)})
	if err != nil {
		t.Fatalf("clear-all delta: %v", err)
	}
	if res.Rounds != 0 || res.Width != 0 || eng.Set().Len() != 0 {
		t.Fatalf("clear-all: rounds=%d width=%d len=%d, want all zero", res.Rounds, res.Width, eng.Set().Len())
	}
	// And the set can be repopulated incrementally from empty.
	res, err = eng.Apply(Delta{Add: []comm.Comm{{Src: 0, Dst: 3}, {Src: 1, Dst: 2}}})
	if err != nil {
		t.Fatalf("repopulate delta: %v", err)
	}
	want = scratchDigest(t, tr, n, []comm.Comm{{Src: 0, Dst: 3}, {Src: 1, Dst: 2}})
	if got := deltaDigestOf(t, res); !reflect.DeepEqual(got, want) {
		t.Fatalf("repopulate diverged:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestDeltaNotReady pins the readiness contract: no completed run, no
// Apply — and Reset clears readiness until the next completed run.
func TestDeltaNotReady(t *testing.T) {
	n := 8
	tr, err := topology.New(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := comm.DisjointPairs(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(tr, s)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Ready() {
		t.Fatal("fresh engine reports Ready before any run")
	}
	if _, err := eng.Apply(Delta{}); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Apply before run: err=%v, want ErrNotReady", err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !eng.Ready() {
		t.Fatal("engine not Ready after successful Run")
	}
	if err := eng.Reset(s); err != nil {
		t.Fatal(err)
	}
	if eng.Ready() {
		t.Fatal("Reset engine still reports Ready")
	}
	if _, err := eng.ApplyRounds(Delta{}); !errors.Is(err, ErrNotReady) {
		t.Fatalf("ApplyRounds after Reset: err=%v, want ErrNotReady", err)
	}
}

// TestDeltaInvalidRejected pins the transactional contract: every invalid
// delta — including one whose valid prefix has already been applied — is
// rejected with ErrDelta, rolls back completely, and leaves the engine
// Ready with the old set producing bit-identical schedules.
func TestDeltaInvalidRejected(t *testing.T) {
	n := 16
	tr, err := topology.New(n)
	if err != nil {
		t.Fatal(err)
	}
	base := []comm.Comm{{Src: 0, Dst: 7}, {Src: 1, Dst: 6}, {Src: 8, Dst: 9}}
	eng, err := New(tr, &comm.Set{N: n, Comms: append([]comm.Comm(nil), base...)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	bad := []Delta{
		{Remove: []comm.Comm{{Src: 2, Dst: 3}}},                                  // not in set
		{Add: []comm.Comm{{Src: 0, Dst: 10}}},                                    // src busy
		{Add: []comm.Comm{{Src: 2, Dst: 6}}},                                     // dst busy
		{Add: []comm.Comm{{Src: 10, Dst: 4}}},                                    // left oriented
		{Add: []comm.Comm{{Src: 3, Dst: 3}}},                                     // self loop
		{Add: []comm.Comm{{Src: -1, Dst: 3}}},                                    // out of range
		{Add: []comm.Comm{{Src: 2, Dst: 20}}},                                    // out of range
		{Add: []comm.Comm{{Src: 5, Dst: 12}}},                                    // crosses 1->6 and 8->9
		{Remove: []comm.Comm{{Src: 8, Dst: 9}}, Add: []comm.Comm{{Src: 9, Dst: 9}}}, // valid prefix, bad add
		{Remove: []comm.Comm{{Src: 0, Dst: 7}, {Src: 0, Dst: 7}}},                // double remove
	}
	for i, d := range bad {
		_, err := eng.Apply(d)
		if !errors.Is(err, ErrDelta) {
			t.Fatalf("bad delta %d (%+v): err=%v, want ErrDelta", i, d, err)
		}
		if !eng.Ready() {
			t.Fatalf("bad delta %d: engine lost readiness on a rejected delta", i)
		}
		if eng.Set().Len() != len(base) {
			t.Fatalf("bad delta %d: set len %d after rollback, want %d", i, eng.Set().Len(), len(base))
		}
	}
	// The rolled-back engine still schedules the original set exactly.
	res, err := eng.Apply(Delta{})
	if err != nil {
		t.Fatalf("Apply after rejections: %v", err)
	}
	want := scratchDigest(t, tr, n, base)
	if got := deltaDigestOf(t, res); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-rollback run diverged:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestDeltaChaosFallback injects a Phase-1 word loss into the Apply run
// (run index 1; the initial run is clean) and verifies the documented
// fallback protocol: Apply dies typed, the engine is no longer Ready,
// further deltas are refused, and Reset + a from-scratch run on the full
// mutated set recovers cleanly.
func TestDeltaChaosFallback(t *testing.T) {
	n := 16
	tr, err := topology.New(n)
	if err != nil {
		t.Fatal(err)
	}
	s, err := comm.DisjointPairs(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New([]fault.Fault{{Kind: fault.DropWord, Node: tr.Leaf(0), Run: 1, Round: fault.Phase1}})
	eng, err := New(tr, s, WithFaults(inj))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatalf("initial run under armed injector: %v", err)
	}
	// Mutate PE 0's pair so the dirty path reads leaf 0's word — where the
	// fault waits.
	d := Delta{Remove: []comm.Comm{s.Comms[0]}, Add: []comm.Comm{{Src: 0, Dst: 2}}}
	if s.Comms[0].Src != 0 {
		t.Fatalf("workload changed shape: first comm %s", s.Comms[0])
	}
	_, err = eng.Apply(d)
	if !errors.Is(err, fault.ErrWordLost) {
		t.Fatalf("faulted Apply: err=%v, want ErrWordLost", err)
	}
	if eng.Ready() {
		t.Fatal("engine still Ready after a faulted Apply")
	}
	if _, err := eng.Apply(Delta{}); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Apply after fault: err=%v, want ErrNotReady", err)
	}
	// Fallback: from-scratch run on the full mutated set (the caller's
	// canonical copy — the engine's arena is not trustworthy here).
	full := &comm.Set{N: n, Comms: append([]comm.Comm{{Src: 0, Dst: 2}}, s.Comms[1:]...)}
	if err := eng.Reset(full); err != nil {
		t.Fatalf("fallback Reset: %v", err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("fallback Run: %v", err)
	}
	if !eng.Ready() {
		t.Fatal("engine not Ready after fallback run")
	}
	want := scratchDigest(t, tr, n, full.Comms, WithFaults(fault.New(nil)))
	if got := deltaDigestOf(t, res); !reflect.DeepEqual(got.rounds, want.rounds) || got.width != want.width {
		t.Fatalf("fallback run diverged from scratch:\n got: %+v\nwant: %+v", got, want)
	}
}

// TestDeltaChaosSweep sweeps injected faults over many (node, round)
// coordinates of the Apply run. Whatever the outcome — a typed failure or
// an undisturbed success — the engine must either recover via the fallback
// protocol or have produced the exact scratch schedule.
func TestDeltaChaosSweep(t *testing.T) {
	n := 16
	tr, err := topology.New(n)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []fault.Kind{fault.DropWord, fault.CorruptWord, fault.FreezeSwitch}
	rounds := []int{fault.Phase1, 0}
	for node := 1; node < 2*n; node++ {
		for _, k := range kinds {
			for _, fr := range rounds {
				if k == fault.FreezeSwitch && (fr == fault.Phase1 || node >= n) {
					continue // freeze is a Phase 2 switch fault
				}
				s, err := comm.DisjointPairs(n, 4)
				if err != nil {
					t.Fatal(err)
				}
				inj := fault.New([]fault.Fault{{Kind: k, Node: topology.Node(node), Run: 1, Round: fr}})
				eng, err := New(tr, s, WithFaults(inj))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Run(); err != nil {
					t.Fatalf("node %d %v: initial run: %v", node, k, err)
				}
				d := Delta{Remove: []comm.Comm{s.Comms[0]}, Add: []comm.Comm{{Src: 0, Dst: 2}}}
				full := append([]comm.Comm{{Src: 0, Dst: 2}}, s.Comms[1:]...)
				res, err := eng.Apply(d)
				want := scratchDigest(t, tr, n, full)
				switch {
				case err != nil:
					if eng.Ready() {
						t.Fatalf("node %d %v round %d: Ready after failed Apply", node, k, fr)
					}
					if err := eng.Reset(&comm.Set{N: n, Comms: full}); err != nil {
						t.Fatalf("node %d %v: fallback Reset: %v", node, k, err)
					}
					rres, err := eng.Run()
					if err != nil {
						t.Fatalf("node %d %v: fallback Run: %v", node, k, err)
					}
					if got := deltaDigestOf(t, rres); !reflect.DeepEqual(got.rounds, want.rounds) {
						t.Fatalf("node %d %v: fallback schedule diverged", node, k)
					}
				case !inj.Fired():
					if got := deltaDigestOf(t, res); !reflect.DeepEqual(got.rounds, want.rounds) || got.width != want.width {
						t.Fatalf("node %d %v round %d: clean Apply diverged from scratch", node, k, fr)
					}
				}
			}
		}
	}
}

// TestDeltaApplyRoundsAllocFree pins the warm-path contract: ApplyRounds
// on a warm engine allocates nothing when the set does not outgrow its
// arenas — the property the online delta sessions and the wire serving
// path depend on.
func TestDeltaApplyRoundsAllocFree(t *testing.T) {
	n := 32
	tr, err := topology.New(n)
	if err != nil {
		t.Fatal(err)
	}
	comms := make([]comm.Comm, 0, n/4)
	for i := 0; i < n/4; i++ {
		comms = append(comms, comm.Comm{Src: 4 * i, Dst: 4*i + 1})
	}
	eng, err := New(tr, &comm.Set{N: n, Comms: comms})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunRounds(); err != nil {
		t.Fatal(err)
	}
	// Alternate slot 0 between its two disjoint variants; warm up once so
	// the dirty list and histogram reach steady-state capacity.
	d1 := Delta{Remove: []comm.Comm{{Src: 0, Dst: 1}}, Add: []comm.Comm{{Src: 2, Dst: 3}}}
	d2 := Delta{Remove: []comm.Comm{{Src: 2, Dst: 3}}, Add: []comm.Comm{{Src: 0, Dst: 1}}}
	if _, err := eng.ApplyRounds(d1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyRounds(d2); err != nil {
		t.Fatal(err)
	}
	flip := false
	allocs := testing.AllocsPerRun(20, func() {
		d := d1
		if flip {
			d = d2
		}
		flip = !flip
		if _, err := eng.ApplyRounds(d); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ApplyRounds allocated %.1f times per run on a warm engine, want 0", allocs)
	}
}

// deltaBenchState builds the N=1024, 90%-overlap workload the BENCH ledger
// tracks: `active` four-PE slots spread evenly over the PE line, each
// holding one in-slot communication, with 1−overlap of the slots rotating
// to a different variant every batch. The set is sparse (64 comms over
// 1024 PEs) — the regime the incremental hypothesis targets, where a
// from-scratch prepare pays O(N) while both the delta prepare and the
// pruned Phase 2 scale with the active communications.
type deltaBenchState struct {
	tr    *topology.Tree
	sets  []*comm.Set // full set per phase, for the scratch engine
	dels  []Delta     // delta from phase i to i+1 (cyclic)
	start *comm.Set
}

func buildDeltaBench(b *testing.B, n, active int, overlap float64, phases int) *deltaBenchState {
	b.Helper()
	tr, err := topology.New(n)
	if err != nil {
		b.Fatal(err)
	}
	slots := n / 4
	if active > slots {
		b.Fatalf("active=%d slots with only %d available", active, slots)
	}
	step := slots / active
	variants := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}, {1, 3}}
	cur := make([]int, active) // variant index per active slot
	mut := int(float64(active)*(1-overlap) + 0.5)
	if mut < 1 {
		mut = 1
	}
	base := func(i int) int { return 4 * i * step }
	setOf := func() *comm.Set {
		s := &comm.Set{N: n}
		for i := 0; i < active; i++ {
			v := variants[cur[i]]
			s.Comms = append(s.Comms, comm.Comm{Src: base(i) + v[0], Dst: base(i) + v[1]})
		}
		return s
	}
	st := &deltaBenchState{tr: tr, start: setOf()}
	rng := rand.New(rand.NewSource(42))
	for p := 0; p < phases; p++ {
		var d Delta
		// Distinct slots per phase: removes run before adds, so mutating
		// the same slot twice in one delta would remove a not-yet-added
		// variant.
		for _, i := range rng.Perm(active)[:mut] {
			old := variants[cur[i]]
			cur[i] = (cur[i] + 1 + rng.Intn(len(variants)-1)) % len(variants)
			next := variants[cur[i]]
			d.Remove = append(d.Remove, comm.Comm{Src: base(i) + old[0], Dst: base(i) + old[1]})
			d.Add = append(d.Add, comm.Comm{Src: base(i) + next[0], Dst: base(i) + next[1]})
		}
		st.dels = append(st.dels, d)
		st.sets = append(st.sets, setOf())
	}
	return st
}

// BenchmarkDeltaApply measures the incremental path at N=1024 and 90% set
// overlap; BenchmarkDeltaScratch is the Reset+RunRounds baseline on the
// same mutation stream. Their ratio feeds BENCH_ledger.jsonl via the lab
// delta sweep, gated at <= 0.5 (Apply at least 2x faster).
func BenchmarkDeltaApply(b *testing.B) {
	st := buildDeltaBench(b, 1024, 64, 0.9, 16)
	eng, err := New(st.tr, st.start)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.RunRounds(); err != nil {
		b.Fatal(err)
	}
	// One warm lap so every phase's arena growth happens outside the timer.
	for _, d := range st.dels {
		if _, err := eng.ApplyRounds(d); err != nil {
			b.Fatal(err)
		}
	}
	// Close the cycle: the last phase's set differs from start, so rebuild.
	if err := eng.Reset(st.start); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.RunRounds(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := st.dels[i%len(st.dels)]
		if i%len(st.dels) == 0 && i > 0 {
			// Re-anchor the cycle without timing the rebuild.
			b.StopTimer()
			if err := eng.Reset(st.start); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.RunRounds(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if _, err := eng.ApplyRounds(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaScratch(b *testing.B) {
	st := buildDeltaBench(b, 1024, 64, 0.9, 16)
	eng, err := New(st.tr, st.start)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.RunRounds(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := st.sets[i%len(st.sets)]
		if err := eng.Reset(s); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.RunRounds(); err != nil {
			b.Fatal(err)
		}
	}
}

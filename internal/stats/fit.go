package stats

import (
	"fmt"
	"math"
	"sort"
)

// Clean returns xs with every NaN and ±Inf removed. The input is not
// modified; a clean input is returned as-is (no copy).
func Clean(xs []float64) []float64 {
	dirty := false
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			dirty = true
			break
		}
	}
	if !dirty {
		return xs
	}
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	return out
}

// Quantile returns the q-th quantile (0..1) of xs by the nearest-rank
// definition (ceil(q·n)-th smallest sample). NaN and Inf samples are
// ignored; an empty (or all-NaN) input yields 0. This is the shared
// quantile implementation: obs summaries, cstload and the perf lab all
// route through it.
func Quantile(xs []float64, q float64) float64 {
	qs := Quantiles(xs, q)
	return qs[0]
}

// Quantiles computes several quantiles over one sorted copy of xs. Each q
// is clamped to [0, 1]; see Quantile for the semantics.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	clean := Clean(xs)
	if len(clean) == 0 {
		return out
	}
	sorted := append([]float64(nil), clean...)
	sort.Float64s(sorted)
	for i, q := range qs {
		rank := int(math.Ceil(q*float64(len(sorted)))) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		out[i] = sorted[rank]
	}
	return out
}

// Median returns the 0.5 quantile (nearest-rank; 0 for an empty input).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// MAD returns the median absolute deviation from the median — the robust
// spread estimator the perf lab's noise bands are built on (a handful of
// outlier CI runs must not widen the band the way they would widen a
// standard deviation). 0 for fewer than two finite samples.
func MAD(xs []float64) float64 {
	clean := Clean(xs)
	if len(clean) < 2 {
		return 0
	}
	m := Median(clean)
	devs := make([]float64, len(clean))
	for i, x := range clean {
		devs[i] = math.Abs(x - m)
	}
	return Median(devs)
}

// Stddev returns the sample standard deviation (n−1 denominator), 0 for
// fewer than two finite samples.
func Stddev(xs []float64) float64 {
	clean := Clean(xs)
	if len(clean) < 2 {
		return 0
	}
	m := Mean(clean)
	sum := 0.0
	for _, x := range clean {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(clean)-1))
}

// LeastSquares fits coefficients c minimizing ||Xc − y||² by solving the
// normal equations XᵀXc = Xᵀy with Gaussian elimination (partial
// pivoting). Each row of X is one observation's feature vector (include a
// constant-1 feature for an intercept). Errors on empty/ragged input,
// fewer rows than features, non-finite values, or a singular system
// (linearly dependent features).
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("stats: least squares needs matching non-empty X (%d rows) and y (%d)", len(x), len(y))
	}
	k := len(x[0])
	if k == 0 {
		return nil, fmt.Errorf("stats: least squares needs at least one feature")
	}
	if len(x) < k {
		return nil, fmt.Errorf("stats: least squares is underdetermined: %d rows for %d features", len(x), k)
	}
	for i, row := range x {
		if len(row) != k {
			return nil, fmt.Errorf("stats: ragged X: row %d has %d features, want %d", i, len(row), k)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("stats: non-finite feature in X row %d", i)
			}
		}
		if math.IsNaN(y[i]) || math.IsInf(y[i], 0) {
			return nil, fmt.Errorf("stats: non-finite response y[%d]", i)
		}
	}
	// Build the augmented normal system [XᵀX | Xᵀy].
	a := make([][]float64, k)
	for i := range a {
		a[i] = make([]float64, k+1)
		for j := 0; j < k; j++ {
			for r := range x {
				a[i][j] += x[r][i] * x[r][j]
			}
		}
		for r := range x {
			a[i][k] += x[r][i] * y[r]
		}
	}
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: singular normal equations (feature %d linearly dependent)", col)
		}
		for r := 0; r < k; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for j := col; j <= k; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	c := make([]float64, k)
	for i := range c {
		c[i] = a[i][k] / a[i][i]
	}
	return c, nil
}

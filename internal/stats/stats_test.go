package stats

import (
	"strings"
	"testing"
)

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); got != 2.8 {
		t.Errorf("Mean = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty slices must read 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5}, {90, 9}, {-5, 1}, {200, 10},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
	// Percentile must not reorder the caller's slice.
	orig := []float64{9, 1, 5}
	Percentile(orig, 50)
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestTableMarkdown(t *testing.T) {
	tab := NewTable("w", "rounds", "ratio")
	tab.AddRow(4, 4, 1.0)
	tab.AddRow(16, 16, 2.5)
	md := tab.Markdown()
	for _, want := range []string{"| w ", "| rounds |", "| 2.50", "|---"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	if tab.Rows() != 2 {
		t.Errorf("Rows = %d", tab.Rows())
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != 4 {
		t.Errorf("markdown has %d lines, want 4:\n%s", len(lines), md)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("x", 1)
	csv := tab.CSV()
	if csv != "a,b\nx,1\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestTableRaggedRow(t *testing.T) {
	tab := NewTable("a", "b", "c")
	tab.AddRow("only", "two")
	md := tab.Markdown()
	if !strings.Contains(md, "only") {
		t.Errorf("ragged row dropped:\n%s", md)
	}
}

// Package stats provides the shared numeric helpers — quantiles, robust
// spread (MAD), least-squares fitting — and the table formatting the
// experiment harness, load generator and perf lab all build on. Every
// consumer that reports a percentile routes through Quantile so the repo
// has exactly one definition of "p99".
package stats

import (
	"fmt"
	"strings"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100); it is Quantile on the
// 0..1 scale and shares its nearest-rank semantics.
func Percentile(xs []float64, p float64) float64 {
	return Quantile(xs, p/100)
}

// Table accumulates rows and renders them as GitHub-flavoured markdown or
// CSV. Columns are fixed at construction.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range t.headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	b.WriteString("|")
	for i := range t.headers {
		b.WriteString(strings.Repeat("-", widths[i]+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header line.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.headers, ","))
	b.WriteString("\n")
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteString("\n")
	}
	return b.String()
}

package stats

import (
	"math"
	"testing"
)

func TestCleanFiltersNonFinite(t *testing.T) {
	in := []float64{1, math.NaN(), 2, math.Inf(1), 3, math.Inf(-1)}
	got := Clean(in)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Clean = %v", got)
	}
	// A clean input must come back without copying.
	clean := []float64{4, 5}
	if out := Clean(clean); &out[0] != &clean[0] {
		t.Error("Clean copied an already-clean slice")
	}
	if out := Clean(nil); len(out) != 0 {
		t.Errorf("Clean(nil) = %v", out)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty input must read 0")
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single sample: %v", got)
	}
	if got := Quantile([]float64{math.NaN(), math.NaN()}, 0.5); got != 0 {
		t.Errorf("all-NaN input must read 0, got %v", got)
	}
	if got := Quantile([]float64{math.NaN(), 3, 1, math.Inf(1), 2}, 0.5); got != 2 {
		t.Errorf("NaN/Inf must be ignored: got %v", got)
	}
	// Nearest-rank on 1..10.
	xs := []float64{10, 9, 8, 7, 6, 5, 4, 3, 2, 1}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 5}, {0.9, 9}, {0.99, 10}, {1, 10}, {-1, 1}, {2, 10},
	} {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if xs[0] != 10 {
		t.Error("Quantile reordered the caller's slice")
	}

	// Rank edge cases around ceil(q·n)−1: q=0 underflows the rank to −1
	// and must clamp low to the minimum sample (not panic or read out of
	// bounds), a subnormal-tiny q rounds up to rank 0, and q=1 lands
	// exactly on the maximum — on multi-sample inputs and the n=1
	// degenerate where both clamps collapse onto the same index.
	for _, c := range []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"q=0 multi", []float64{5, 3, 4}, 0, 3},
		{"q=0 single", []float64{7}, 0, 7},
		{"q=tiny multi", []float64{5, 3, 4}, 1e-300, 3},
		{"q=tiny single", []float64{7}, 1e-300, 7},
		{"q=1 multi", []float64{5, 3, 4}, 1, 5},
		{"q=1 single", []float64{7}, 1, 7},
		{"q just under 1", []float64{5, 3, 4}, math.Nextafter(1, 0), 5},
	} {
		if got := Quantile(c.xs, c.q); got != c.want {
			t.Errorf("%s: Quantile(%v, %v) = %v, want %v", c.name, c.xs, c.q, got, c.want)
		}
	}
}

func TestQuantilesSharesOneSort(t *testing.T) {
	got := Quantiles([]float64{3, 1, 2}, 0, 0.5, 1)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Quantiles = %v", got)
	}
	if out := Quantiles(nil, 0.5, 0.99); out[0] != 0 || out[1] != 0 {
		t.Errorf("empty Quantiles = %v", out)
	}
}

func TestMedianMADStddev(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %v", got)
	}
	// Deviations from 3: {2,1,0,1,97} → median 1. The outlier moves MAD
	// not at all, which is the point.
	if got := MAD(xs); got != 1 {
		t.Errorf("MAD = %v", got)
	}
	if MAD(nil) != 0 || MAD([]float64{5}) != 0 {
		t.Error("MAD of <2 samples must be 0")
	}
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138) > 0.001 {
		t.Errorf("Stddev = %v", got)
	}
	if Stddev(nil) != 0 || Stddev([]float64{1}) != 0 {
		t.Error("Stddev of <2 samples must be 0")
	}
	if got := MAD([]float64{math.NaN(), 1, 2, 3}); got != 1 {
		t.Errorf("MAD must ignore NaN: %v", got)
	}
}

func TestLeastSquaresRecoversLine(t *testing.T) {
	// y = 3 + 2x, exactly.
	var x [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		x = append(x, []float64{1, float64(i)})
		y = append(y, 3+2*float64(i))
	}
	c, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-3) > 1e-9 || math.Abs(c[1]-2) > 1e-9 {
		t.Fatalf("coefficients = %v, want [3 2]", c)
	}
}

func TestLeastSquaresTwoFeatures(t *testing.T) {
	// y = 1 + 2a + 5b over a small grid.
	var x [][]float64
	var y []float64
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			x = append(x, []float64{1, float64(a), float64(b)})
			y = append(y, 1+2*float64(a)+5*float64(b))
		}
	}
	c, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{1, 2, 5} {
		if math.Abs(c[i]-want) > 1e-9 {
			t.Fatalf("coefficients = %v", c)
		}
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty system must error")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system must error")
	}
	if _, err := LeastSquares([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Error("ragged X must error")
	}
	if _, err := LeastSquares([][]float64{{1}, {math.NaN()}}, []float64{1, 2}); err == nil {
		t.Error("NaN feature must error")
	}
	if _, err := LeastSquares([][]float64{{1, 1}, {1, 1}, {1, 1}}, []float64{1, 2, 3}); err == nil {
		t.Error("dependent features must error")
	}
}

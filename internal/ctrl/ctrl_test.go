package ctrl

import (
	"testing"
	"testing/quick"
)

func TestUpAddAndString(t *testing.T) {
	u := Up{S: 1, D: 2}.Add(Up{S: 3, D: 4})
	if u != (Up{S: 4, D: 6}) {
		t.Fatalf("Add = %v", u)
	}
	if u.String() != "[4,6]" {
		t.Fatalf("String = %q", u.String())
	}
}

func TestMatchExamples(t *testing.T) {
	cases := []struct {
		left, right Up
		want        Stored
	}{
		// Two left sources meet two right destinations: both matched.
		{Up{2, 0}, Up{0, 2}, Stored{M: 2}},
		// Three left sources, one right destination: one matched, two pass.
		{Up{3, 0}, Up{0, 1}, Stored{M: 1, SL: 2}},
		// One left source, three right destinations: one matched, two fed
		// from above.
		{Up{1, 0}, Up{0, 3}, Stored{M: 1, DR: 2}},
		// Mixed: left has a destination too, right has a source too.
		{Up{2, 1}, Up{1, 2}, Stored{M: 2, DL: 1, SR: 1}},
		// Nothing to match.
		{Up{0, 2}, Up{3, 0}, Stored{DL: 2, SR: 3}},
		{Up{0, 0}, Up{0, 0}, Stored{}},
	}
	for _, c := range cases {
		got := Match(c.left, c.right)
		if got != c.want {
			t.Errorf("Match(%v,%v) = %v, want %v", c.left, c.right, got, c.want)
		}
	}
}

func TestUpWordAfterMatch(t *testing.T) {
	s := Match(Up{3, 1}, Up{2, 2}) // M=2, SL=1, DL=1, SR=2, DR=0
	up := s.UpWord()
	if up != (Up{S: 3, D: 1}) {
		t.Fatalf("UpWord = %v, want [3,1]", up)
	}
}

// Matching must conserve demands: every source is matched or forwarded, and
// likewise every destination.
func TestMatchConservationProperty(t *testing.T) {
	f := func(sl, dl, sr, dr uint8) bool {
		left := Up{S: int(sl), D: int(dl)}
		right := Up{S: int(sr), D: int(dr)}
		st := Match(left, right)
		if st.M+st.SL != left.S || st.M+st.DR != right.D {
			return false
		}
		if st.DL != left.D || st.SR != right.S {
			return false
		}
		up := st.UpWord()
		return up.S == left.S+right.S-st.M && up.D == left.D+right.D-st.M
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoredPendingAndTotal(t *testing.T) {
	if (Stored{}).Pending() {
		t.Error("zero Stored must not be pending")
	}
	for _, s := range []Stored{{M: 1}, {SL: 1}, {DL: 1}, {SR: 1}, {DR: 1}} {
		if !s.Pending() {
			t.Errorf("%v must be pending", s)
		}
		if s.Total() != 1 {
			t.Errorf("%v Total = %d", s, s.Total())
		}
	}
}

func TestUseFlags(t *testing.T) {
	if UseNone.HasS() || UseNone.HasD() {
		t.Error("UseNone must use nothing")
	}
	if !UseS.HasS() || UseS.HasD() {
		t.Error("UseS wrong")
	}
	if UseD.HasS() || !UseD.HasD() {
		t.Error("UseD wrong")
	}
	if !UseSD.HasS() || !UseSD.HasD() {
		t.Error("UseSD wrong")
	}
	if UseNone.WithS() != UseS || UseNone.WithD() != UseD {
		t.Error("With* from none wrong")
	}
	if UseS.WithD() != UseSD || UseD.WithS() != UseSD {
		t.Error("With* combine wrong")
	}
	if UseSD.WithS() != UseSD || UseSD.WithD() != UseSD {
		t.Error("With* idempotence wrong")
	}
}

func TestUseString(t *testing.T) {
	cases := map[Use]string{
		UseNone: "[null,null]",
		UseS:    "[s,null]",
		UseD:    "[d,null]",
		UseSD:   "[s,d]",
	}
	for u, want := range cases {
		if got := u.String(); got != want {
			t.Errorf("Use(%d).String() = %q, want %q", u, got, want)
		}
	}
	if Use(9).String() == "" {
		t.Error("invalid use must still render")
	}
}

func TestDownString(t *testing.T) {
	if got := (Down{Use: UseSD, Xs: 1, Xd: 2}).String(); got != "[s,d] xs=1 xd=2" {
		t.Errorf("Down.String = %q", got)
	}
	if got := (Down{Use: UseNone}).String(); got != "[null,null]" {
		t.Errorf("Down.String = %q", got)
	}
	if got := (Down{Use: UseS, Xs: 3}).String(); got != "[s,null] xs=3" {
		t.Errorf("Down.String = %q", got)
	}
	if got := (Down{Use: UseD, Xd: 4}).String(); got != "[d,null] xd=4" {
		t.Errorf("Down.String = %q", got)
	}
}

func TestEncodeDecodeUp(t *testing.T) {
	for _, u := range []Up{{}, {1, 0}, {0, 1}, {123456, 654321}} {
		b, err := EncodeUp(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != UpWordBytes {
			t.Fatalf("encoded Up is %d bytes", len(b))
		}
		got, err := DecodeUp(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != u {
			t.Fatalf("round trip %v -> %v", u, got)
		}
	}
	if _, err := EncodeUp(Up{S: -1}); err == nil {
		t.Error("negative counter: want error")
	}
	if _, err := DecodeUp([]byte{1, 2}); err == nil {
		t.Error("short buffer: want error")
	}
}

func TestEncodeDecodeStored(t *testing.T) {
	s := Stored{M: 5, SL: 4, DL: 3, SR: 2, DR: 1}
	b, err := EncodeStored(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != StoredWordBytes {
		t.Fatalf("encoded Stored is %d bytes", len(b))
	}
	got, err := DecodeStored(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip %v -> %v", s, got)
	}
	if _, err := EncodeStored(Stored{DR: -2}); err == nil {
		t.Error("negative counter: want error")
	}
	if _, err := DecodeStored(nil); err == nil {
		t.Error("nil buffer: want error")
	}
}

func TestEncodeDecodeDown(t *testing.T) {
	for _, d := range []Down{
		{Use: UseNone},
		{Use: UseS, Xs: 7},
		{Use: UseD, Xd: 9},
		{Use: UseSD, Xs: 1, Xd: 2},
	} {
		b, err := EncodeDown(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != DownWordBytes {
			t.Fatalf("encoded Down is %d bytes", len(b))
		}
		got, err := DecodeDown(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != d {
			t.Fatalf("round trip %v -> %v", d, got)
		}
	}
	if _, err := EncodeDown(Down{Use: Use(7)}); err == nil {
		t.Error("bad tag: want error")
	}
	if _, err := EncodeDown(Down{Use: UseS, Xs: -3}); err == nil {
		t.Error("negative selector: want error")
	}
	if _, err := DecodeDown([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("bad tag byte: want error")
	}
	if _, err := DecodeDown([]byte{0}); err == nil {
		t.Error("short buffer: want error")
	}
}

// Round-trip property over random words: encoding is total on valid inputs
// and decoding inverts it; sizes are constant.
func TestEncodingRoundTripProperty(t *testing.T) {
	f := func(s, d uint16, use uint8, xs, xd uint16) bool {
		u := Up{S: int(s), D: int(d)}
		bu, err := EncodeUp(u)
		if err != nil || len(bu) != UpWordBytes {
			return false
		}
		ru, err := DecodeUp(bu)
		if err != nil || ru != u {
			return false
		}
		dn := Down{Use: Use(use % 4), Xs: int(xs), Xd: int(xd)}
		bd, err := EncodeDown(dn)
		if err != nil || len(bd) != DownWordBytes {
			return false
		}
		rd, err := DecodeDown(bd)
		return err == nil && rd == dn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

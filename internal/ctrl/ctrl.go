// Package ctrl defines the control information exchanged on CST links by
// the configuration and scheduling algorithm (paper §2.2, §3):
//
//   - Up (C_U): flows child→parent in Phase 1 — the number of sources and
//     destinations in the child's subtree that still need the parent link.
//   - Stored (C_S): per-switch state computed in Step 1.3 —
//     [M, S_L−min(S_L,M), D_L, S_R, D_R−min(D_R,M)].
//   - Down (C_{D-L} / C_{D-R}): flows parent→child in every Phase 2 round —
//     which parent-link halves the child must use this round ([s,null],
//     [d,null], [s,d] or [null,null]) plus the x_s / x_d leaf selectors of
//     Definition 2.
//
// Theorem 5 claims each switch stores and forwards a constant number of
// words; the binary encodings here make that measurable: experiment E4
// checks that encoded sizes do not grow with N or w.
package ctrl

import (
	"encoding/binary"
	"fmt"
)

// Up is the Phase 1 child→parent word C_U = [S, D]: S sources and D
// destinations in the child's subtree require the link to the parent.
// A leaf PE sends [1,0] (source), [0,1] (destination) or [0,0].
type Up struct {
	S, D int
}

// String renders e.g. "[2,1]".
func (u Up) String() string { return fmt.Sprintf("[%d,%d]", u.S, u.D) }

// Add pointwise sums two Up words.
func (u Up) Add(v Up) Up { return Up{S: u.S + v.S, D: u.D + v.D} }

// Stored is the per-switch state C_S retained at the end of Phase 1 and
// decremented as communications are scheduled in Phase 2. The five fields
// are the five communication types of paper Fig. 4(a).
type Stored struct {
	// M is the number of still-unscheduled source/destination pairs matched
	// at this switch (type 1; they all need the l_i→r_o connection).
	M int
	// SL is S_L − min(S_L, M): unmatched sources from the left child that
	// pass upward (type 4).
	SL int
	// DL is D_L: destinations in the left subtree fed from above (type 3).
	DL int
	// SR is S_R: sources from the right child that pass upward (type 2).
	SR int
	// DR is D_R − min(D_R, M): unmatched destinations in the right subtree
	// fed from above (type 5).
	DR int
}

// Match computes the Step 1.3 state at a switch from its children's Up
// words: M = min(S_L, D_R) matched pairs (Lemma 1 makes count-only matching
// sound), the remainder classified into the other four types.
func Match(left, right Up) Stored {
	m := left.S
	if right.D < m {
		m = right.D
	}
	return Stored{
		M:  m,
		SL: left.S - m,
		DL: left.D,
		SR: right.S,
		DR: right.D - m,
	}
}

// UpWord returns the C_U word this switch forwards to its parent:
// [SL + SR, DL + DR] after matching.
func (s Stored) UpWord() Up {
	return Up{S: s.SL + s.SR, D: s.DL + s.DR}
}

// Pending reports whether any communication still needs this switch.
func (s Stored) Pending() bool {
	return s.M > 0 || s.SL > 0 || s.DL > 0 || s.SR > 0 || s.DR > 0
}

// Total returns the number of still-unscheduled communication demands at
// this switch (a matched pair counts once).
func (s Stored) Total() int { return s.M + s.SL + s.DL + s.SR + s.DR }

// String renders e.g. "{M:1 SL:0 DL:2 SR:1 DR:0}".
func (s Stored) String() string {
	return fmt.Sprintf("{M:%d SL:%d DL:%d SR:%d DR:%d}", s.M, s.SL, s.DL, s.SR, s.DR)
}

// Use encodes which halves of the parent link the child must drive this
// round (the C_{D-L_1} / C_{D-R_1} component of the Down word).
type Use uint8

const (
	// UseNone is [null, null]: the parent link is idle this round.
	UseNone Use = iota
	// UseS is [s, null]: the upward half carries a source this round.
	UseS
	// UseD is [d, null]: the downward half feeds a destination this round.
	UseD
	// UseSD is [s, d]: both halves are in use this round.
	UseSD
)

// String renders the paper's notation: "[null,null]", "[s,null]",
// "[d,null]" or "[s,d]".
func (u Use) String() string {
	switch u {
	case UseNone:
		return "[null,null]"
	case UseS:
		return "[s,null]"
	case UseD:
		return "[d,null]"
	case UseSD:
		return "[s,d]"
	default:
		return fmt.Sprintf("Use(%d)", uint8(u))
	}
}

// HasS reports whether the upward link half is used.
func (u Use) HasS() bool { return u == UseS || u == UseSD }

// HasD reports whether the downward link half is used.
func (u Use) HasD() bool { return u == UseD || u == UseSD }

// WithS returns u with the upward half marked used.
func (u Use) WithS() Use {
	if u.HasD() {
		return UseSD
	}
	return UseS
}

// WithD returns u with the downward half marked used.
func (u Use) WithD() Use {
	if u.HasS() {
		return UseSD
	}
	return UseD
}

// Down is the Phase 2 parent→child word C_{D-L} = [Use, x_s, x_d].
// Xs selects the Xs-th pending upward source of the child's subtree
// (counting pending sources to its left, Definition 2); Xd selects the
// Xd-th pending downward destination (counting pending destinations to its
// right). The selector is only meaningful when the corresponding link half
// is in use.
type Down struct {
	Use    Use
	Xs, Xd int
}

// String renders e.g. "[s,d] xs=1 xd=0".
func (d Down) String() string {
	switch d.Use {
	case UseNone:
		return d.Use.String()
	case UseS:
		return fmt.Sprintf("%s xs=%d", d.Use, d.Xs)
	case UseD:
		return fmt.Sprintf("%s xd=%d", d.Use, d.Xd)
	default:
		return fmt.Sprintf("%s xs=%d xd=%d", d.Use, d.Xs, d.Xd)
	}
}

// Encoding sizes: every word encodes into a fixed number of bytes,
// independent of N and w — the executable form of Theorem 5's
// "constant number of words".
const (
	// UpWordBytes is the encoded size of an Up word.
	UpWordBytes = 8
	// StoredWordBytes is the encoded size of a Stored word.
	StoredWordBytes = 20
	// DownWordBytes is the encoded size of a Down word.
	DownWordBytes = 9
)

// EncodeUp serializes an Up word into 8 bytes (two uint32 counters).
func EncodeUp(u Up) ([]byte, error) {
	b := make([]byte, UpWordBytes)
	if _, err := EncodeUpInto(b, u); err != nil {
		return nil, err
	}
	return b, nil
}

// EncodeUpInto serializes u into buf, which must hold at least UpWordBytes,
// and returns the encoded size. It allocates nothing, so engines that only
// need wire-size accounting can reuse one scratch buffer across every word.
func EncodeUpInto(buf []byte, u Up) (int, error) {
	if len(buf) < UpWordBytes {
		return 0, fmt.Errorf("ctrl: Up buffer needs %d bytes, got %d", UpWordBytes, len(buf))
	}
	if err := checkCounter("S", u.S); err != nil {
		return 0, err
	}
	if err := checkCounter("D", u.D); err != nil {
		return 0, err
	}
	binary.BigEndian.PutUint32(buf[0:], uint32(u.S))
	binary.BigEndian.PutUint32(buf[4:], uint32(u.D))
	return UpWordBytes, nil
}

// DecodeUp reverses EncodeUp.
func DecodeUp(b []byte) (Up, error) {
	if len(b) != UpWordBytes {
		return Up{}, fmt.Errorf("ctrl: Up word must be %d bytes, got %d", UpWordBytes, len(b))
	}
	return Up{
		S: int(binary.BigEndian.Uint32(b[0:])),
		D: int(binary.BigEndian.Uint32(b[4:])),
	}, nil
}

// EncodeStored serializes a Stored word into 20 bytes (five uint32
// counters).
func EncodeStored(s Stored) ([]byte, error) {
	b := make([]byte, StoredWordBytes)
	if _, err := EncodeStoredInto(b, s); err != nil {
		return nil, err
	}
	return b, nil
}

// EncodeStoredInto serializes s into buf, which must hold at least
// StoredWordBytes, and returns the encoded size without allocating.
func EncodeStoredInto(buf []byte, s Stored) (int, error) {
	if len(buf) < StoredWordBytes {
		return 0, fmt.Errorf("ctrl: Stored buffer needs %d bytes, got %d", StoredWordBytes, len(buf))
	}
	fields := [5]struct {
		name string
		v    int
	}{{"M", s.M}, {"SL", s.SL}, {"DL", s.DL}, {"SR", s.SR}, {"DR", s.DR}}
	for i, f := range fields {
		if err := checkCounter(f.name, f.v); err != nil {
			return 0, err
		}
		binary.BigEndian.PutUint32(buf[4*i:], uint32(f.v))
	}
	return StoredWordBytes, nil
}

// DecodeStored reverses EncodeStored.
func DecodeStored(b []byte) (Stored, error) {
	if len(b) != StoredWordBytes {
		return Stored{}, fmt.Errorf("ctrl: Stored word must be %d bytes, got %d", StoredWordBytes, len(b))
	}
	return Stored{
		M:  int(binary.BigEndian.Uint32(b[0:])),
		SL: int(binary.BigEndian.Uint32(b[4:])),
		DL: int(binary.BigEndian.Uint32(b[8:])),
		SR: int(binary.BigEndian.Uint32(b[12:])),
		DR: int(binary.BigEndian.Uint32(b[16:])),
	}, nil
}

// EncodeDown serializes a Down word into 9 bytes (use tag plus two uint32
// selectors).
func EncodeDown(d Down) ([]byte, error) {
	b := make([]byte, DownWordBytes)
	if _, err := EncodeDownInto(b, d); err != nil {
		return nil, err
	}
	return b, nil
}

// EncodeDownInto serializes d into buf, which must hold at least
// DownWordBytes, and returns the encoded size without allocating.
func EncodeDownInto(buf []byte, d Down) (int, error) {
	if len(buf) < DownWordBytes {
		return 0, fmt.Errorf("ctrl: Down buffer needs %d bytes, got %d", DownWordBytes, len(buf))
	}
	if d.Use > UseSD {
		return 0, fmt.Errorf("ctrl: invalid use tag %d", d.Use)
	}
	if err := checkCounter("Xs", d.Xs); err != nil {
		return 0, err
	}
	if err := checkCounter("Xd", d.Xd); err != nil {
		return 0, err
	}
	buf[0] = byte(d.Use)
	binary.BigEndian.PutUint32(buf[1:], uint32(d.Xs))
	binary.BigEndian.PutUint32(buf[5:], uint32(d.Xd))
	return DownWordBytes, nil
}

// DecodeDown reverses EncodeDown.
func DecodeDown(b []byte) (Down, error) {
	if len(b) != DownWordBytes {
		return Down{}, fmt.Errorf("ctrl: Down word must be %d bytes, got %d", DownWordBytes, len(b))
	}
	if b[0] > byte(UseSD) {
		return Down{}, fmt.Errorf("ctrl: invalid use tag %d", b[0])
	}
	return Down{
		Use: Use(b[0]),
		Xs:  int(binary.BigEndian.Uint32(b[1:])),
		Xd:  int(binary.BigEndian.Uint32(b[5:])),
	}, nil
}

func checkCounter(name string, v int) error {
	if v < 0 || v > int(^uint32(0)) {
		return fmt.Errorf("ctrl: field %s out of range: %d", name, v)
	}
	return nil
}

// Package deliver verifies Theorem 4 on the data plane: it pushes one
// unique token per scheduled source through the *switch configurations
// alone* (no knowledge of the algorithm's intent) and checks every
// scheduled destination receives exactly its partner's token.
//
// The data unit of a switch (paper Fig. 3(a)) forwards, for each output,
// the value present at the configured driving input. The tree makes
// propagation acyclic: upward values are computed leaves-to-root, then
// downward values root-to-leaves.
package deliver

import (
	"fmt"

	"cst/internal/comm"
	"cst/internal/padr"
	"cst/internal/topology"
	"cst/internal/xbar"
)

// NoToken marks an idle link.
const NoToken = -1

// RoundConfig is a snapshot of every switch's configuration during one
// round.
type RoundConfig map[topology.Node]xbar.Config

// Propagate pushes tokens through one round's configurations. sources lists
// the PEs that drive their upward leaf link this round (each drives its own
// PE index as the token). The result maps every PE to the token visible on
// its downward leaf link (NoToken if idle). Idle PEs may legitimately see
// stale garbage when configurations are held across rounds; only scheduled
// destinations' readings are meaningful, which is exactly what the paper's
// Step 2.1 prescribes ("all PEs that receive [s,null] or [d,null] will
// participate").
func Propagate(t *topology.Tree, cfg RoundConfig, sources []int) []int {
	n := t.Leaves()
	// up[node] is the token on the node→parent link half.
	up := make(map[topology.Node]int, 2*n)
	for pe := 0; pe < n; pe++ {
		up[t.Leaf(pe)] = NoToken
	}
	for _, pe := range sources {
		up[t.Leaf(pe)] = pe
	}
	t.EachSwitchBottomUp(func(u topology.Node) {
		up[u] = NoToken
		switch cfg[u].Driver(xbar.P) {
		case xbar.L:
			up[u] = up[t.Left(u)]
		case xbar.R:
			up[u] = up[t.Right(u)]
		}
	})
	// down[node] is the token on the parent→node link half.
	down := make(map[topology.Node]int, 2*n)
	down[t.Root()] = NoToken
	t.EachSwitchTopDown(func(u topology.Node) {
		for _, side := range []xbar.Side{xbar.L, xbar.R} {
			child := t.Left(u)
			if side == xbar.R {
				child = t.Right(u)
			}
			token := NoToken
			switch cfg[u].Driver(side) {
			case xbar.L:
				token = up[t.Left(u)]
			case xbar.R:
				token = up[t.Right(u)]
			case xbar.P:
				token = down[u]
			}
			down[child] = token
		}
	})
	out := make([]int, n)
	for pe := 0; pe < n; pe++ {
		out[pe] = down[t.Leaf(pe)]
	}
	return out
}

// VerifyRound checks that every communication performed in a round actually
// received its source's token through the configured circuits.
func VerifyRound(t *topology.Tree, cfg RoundConfig, performed []comm.Comm) error {
	sources := make([]int, len(performed))
	for i, c := range performed {
		sources[i] = c.Src
	}
	tokens := Propagate(t, cfg, sources)
	for _, c := range performed {
		if got := tokens[c.Dst]; got != c.Src {
			return fmt.Errorf("deliver: destination %d read token %d, want %d", c.Dst, got, c.Src)
		}
	}
	return nil
}

// Recorder captures per-round configuration snapshots from a padr run.
// Attach via Observer(), run the engine, then call Verify.
type Recorder struct {
	rounds    []RoundConfig
	performed [][]comm.Comm
	current   RoundConfig
}

// Observer returns padr callbacks that populate the recorder. Compose by
// hand if you also need your own callbacks.
func (r *Recorder) Observer() padr.Observer {
	return padr.Observer{
		RoundStart: func(int) { r.current = RoundConfig{} },
		Configured: func(u topology.Node, cfg xbar.Config) {
			r.current[u] = cfg
		},
		RoundDone: func(_ int, performed []comm.Comm) {
			r.rounds = append(r.rounds, r.current)
			r.performed = append(r.performed, append([]comm.Comm(nil), performed...))
			r.current = nil
		},
	}
}

// Rounds returns the number of captured rounds.
func (r *Recorder) Rounds() int { return len(r.rounds) }

// Config returns the captured configuration snapshot of one round.
func (r *Recorder) Config(round int) RoundConfig { return r.rounds[round] }

// Verify replays every captured round through the data plane.
func (r *Recorder) Verify(t *topology.Tree) error {
	if len(r.rounds) != len(r.performed) {
		return fmt.Errorf("deliver: recorder captured %d configs but %d round outcomes", len(r.rounds), len(r.performed))
	}
	for i := range r.rounds {
		if err := VerifyRound(t, r.rounds[i], r.performed[i]); err != nil {
			return fmt.Errorf("deliver: round %d: %v", i, err)
		}
	}
	return nil
}

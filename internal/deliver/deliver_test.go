package deliver

import (
	"math/rand"
	"strings"
	"testing"

	"cst/internal/circuit"
	"cst/internal/comm"
	"cst/internal/padr"
	"cst/internal/topology"
	"cst/internal/xbar"
)

func switchSet(t *topology.Tree) map[topology.Node]*xbar.Switch {
	m := map[topology.Node]*xbar.Switch{}
	t.EachSwitch(func(n topology.Node) { m[n] = xbar.NewSwitch() })
	return m
}

func snapshot(t *topology.Tree, switches map[topology.Node]*xbar.Switch) RoundConfig {
	cfg := RoundConfig{}
	t.EachSwitch(func(n topology.Node) { cfg[n] = switches[n].Config() })
	return cfg
}

func TestPropagateSingleCircuit(t *testing.T) {
	tr := topology.MustNew(8)
	switches := switchSet(tr)
	c := comm.Comm{Src: 1, Dst: 6}
	if err := circuit.Configure(tr, switches, c); err != nil {
		t.Fatal(err)
	}
	tokens := Propagate(tr, snapshot(tr, switches), []int{1})
	if tokens[6] != 1 {
		t.Fatalf("destination 6 read %d, want 1", tokens[6])
	}
	for pe, tok := range tokens {
		if pe != 6 && tok != NoToken {
			t.Fatalf("idle PE %d read %d", pe, tok)
		}
	}
}

func TestPropagateParallelCircuits(t *testing.T) {
	tr := topology.MustNew(16)
	switches := switchSet(tr)
	comms := []comm.Comm{{Src: 0, Dst: 3}, {Src: 4, Dst: 7}, {Src: 9, Dst: 14}}
	for _, c := range comms {
		if err := circuit.Configure(tr, switches, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := VerifyRound(tr, snapshot(tr, switches), comms); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRoundDetectsMisdelivery(t *testing.T) {
	tr := topology.MustNew(8)
	switches := switchSet(tr)
	// Configure the circuit for 1->6 but claim 1->5 was performed.
	if err := circuit.Configure(tr, switches, comm.Comm{Src: 1, Dst: 6}); err != nil {
		t.Fatal(err)
	}
	err := VerifyRound(tr, snapshot(tr, switches), []comm.Comm{{Src: 1, Dst: 5}})
	if err == nil || !strings.Contains(err.Error(), "read token") {
		t.Fatalf("want misdelivery error, got %v", err)
	}
}

func TestPropagateNoSources(t *testing.T) {
	tr := topology.MustNew(4)
	tokens := Propagate(tr, RoundConfig{}, nil)
	for pe, tok := range tokens {
		if tok != NoToken {
			t.Fatalf("PE %d read %d from an unconfigured tree", pe, tok)
		}
	}
}

// Theorem 4 end-to-end: every round of a PADR run, replayed purely through
// the captured switch configurations, delivers every scheduled token.
func TestPADRDataPlane(t *testing.T) {
	for _, expr := range []string{
		"(.)",
		"(())",
		"(()())..",
		"((.)((.)..).)(.)",
		"(((())))",
	} {
		s, err := comm.Parse(expr)
		if err != nil {
			t.Fatal(err)
		}
		tr := topology.MustNew(s.N)
		var rec Recorder
		e, err := padr.New(tr, s, padr.WithObserver(rec.Observer()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		if rec.Rounds() != res.Rounds {
			t.Fatalf("%q: recorder captured %d rounds, engine ran %d", expr, rec.Rounds(), res.Rounds)
		}
		if err := rec.Verify(tr); err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
	}
}

func TestPADRDataPlaneRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		n := 1 << (2 + rng.Intn(5))
		s, err := comm.RandomWellNested(rng, n, rng.Intn(n/2+1))
		if err != nil {
			t.Fatal(err)
		}
		tr := topology.MustNew(n)
		var rec Recorder
		e, err := padr.New(tr, s, padr.WithObserver(rec.Observer()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatalf("set %s: %v", s, err)
		}
		if err := rec.Verify(tr); err != nil {
			t.Fatalf("set %s: %v", s, err)
		}
	}
}

func TestRecorderMismatch(t *testing.T) {
	r := &Recorder{rounds: []RoundConfig{{}}}
	if err := r.Verify(topology.MustNew(4)); err == nil {
		t.Fatal("mismatched recorder must fail verification")
	}
}

func TestRecorderConfigAccessor(t *testing.T) {
	s := comm.MustParse("(())")
	tr := topology.MustNew(4)
	var rec Recorder
	e, err := padr.New(tr, s, padr.WithObserver(rec.Observer()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	cfg := rec.Config(0)
	if len(cfg) == 0 {
		t.Fatal("round 0 snapshot empty")
	}
	// Round 0 schedules the outer pair (0,3): the root must be l->r.
	if cfg[tr.Root()].Driver(xbar.R) != xbar.L {
		t.Fatalf("root config in round 0: %s", cfg[tr.Root()])
	}
}

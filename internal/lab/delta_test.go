package lab

import (
	"strings"
	"testing"
)

// TestDeltaSweep runs the overlap sweep at the bench shape (sparse
// 64-slot session on N=1024) and pins the twin's two claims: the
// incremental rounds equal the from-scratch reference on every point, and
// the gated 90%-overlap point meets the 2x speedup bound.
func TestDeltaSweep(t *testing.T) {
	res, err := RunDeltaSweep(DeltaSweepConfig{
		N: 1024, Active: 64, Overlaps: []float64{0.5, 0.75, 0.9},
		Phases: 4, Reps: 3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Rounds != row.ScratchRounds {
			t.Fatalf("overlap %.2f: incremental rounds %d != from-scratch %d",
				row.Overlap, row.Rounds, row.ScratchRounds)
		}
		if row.ApplyNS <= 0 || row.ScratchNS <= 0 {
			t.Fatalf("overlap %.2f: non-positive latency %+v", row.Overlap, row)
		}
	}
	// |delta| shrinks as overlap grows: 32, 16, 6 mutated slots.
	if res.Rows[0].K <= res.Rows[2].K {
		t.Fatalf("K not decreasing with overlap: %d .. %d", res.Rows[0].K, res.Rows[2].K)
	}
	gated := res.Rows[2]
	if !gated.Gated {
		t.Fatalf("90%% overlap point not gated: %+v", gated)
	}
	if gated.Ratio > res.Config.GateRatio {
		t.Fatalf("apply/scratch ratio %.2f at 90%% overlap exceeds the %.2f gate",
			gated.Ratio, res.Config.GateRatio)
	}
	if res.Model == nil {
		t.Fatal("no fitted model from a 3-point sweep")
	}
	if !res.Ok() {
		t.Fatalf("sweep not ok:\n%s", res.Table())
	}

	// Ledger entries: exact rounds everywhere, the speedup bound only on
	// the gated point, and the whole batch passes Check.
	entries := res.Entries()
	var exact, bound int
	for _, e := range entries {
		if e.Exact {
			exact++
		}
		if e.Bound {
			bound++
			if !strings.Contains(e.Bench, "ov=90") {
				t.Fatalf("bound entry on ungated point: %s", e.Bench)
			}
		}
	}
	if exact != 3 || bound != 1 {
		t.Fatalf("entries: %d exact, %d bound, want 3 and 1", exact, bound)
	}
	stamp := NewStamp("test", "delta-sweep")
	for i := range entries {
		entries[i] = stamp.Apply(entries[i])
	}
	if _, ok := Check(entries, CheckOptions{}); !ok {
		t.Fatal("fresh delta sweep entries fail their own gate")
	}
}

// TestDeltaStreamShape pins the workload generator: distinct slots per
// delta, exactly k removes and adds, and canonical sets that track the
// mutation chain.
func TestDeltaStreamShape(t *testing.T) {
	st, err := buildDeltaStream(256, 16, 4, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.dels) != 6 || len(st.sets) != 6 {
		t.Fatalf("stream: %d deltas, %d sets, want 6 each", len(st.dels), len(st.sets))
	}
	if st.start.Len() != 16 {
		t.Fatalf("start set has %d comms, want 16", st.start.Len())
	}
	for p, d := range st.dels {
		if len(d.Remove) != 4 || len(d.Add) != 4 {
			t.Fatalf("phase %d: %d removes, %d adds, want 4 each", p, len(d.Remove), len(d.Add))
		}
		if st.sets[p].Len() != 16 {
			t.Fatalf("phase %d: set size %d, want 16", p, st.sets[p].Len())
		}
	}
	// Over-subscribed active slots reject instead of colliding.
	if _, err := buildDeltaStream(16, 8, 1, 1, 1); err == nil {
		t.Fatal("8 active slots on N=16 (4 available) accepted")
	}
}

package lab

import (
	"math"
	"strings"
	"testing"
)

// TestSweepTheoremExact is the lab's core acceptance claim: over >= 3
// values of N and >= 2 engines, the analytical twin's round and word
// counts match the engines exactly, measured power stays under the
// envelope, and every latency lands inside the fitted noise band.
func TestSweepTheoremExact(t *testing.T) {
	res, err := RunSweep(SweepConfig{
		Ns:      []int{32, 64, 128},
		Ws:      []int{2, 8},
		Engines: []string{EnginePADR, EngineSim, EngineOnline},
		Reps:    3,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3*3*2 {
		t.Fatalf("rows = %d, want 18", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Rounds != row.Pred.Rounds {
			t.Errorf("%s N=%d w=%d: rounds %d, twin predicts %d",
				row.Engine, row.N, row.W, row.Rounds, row.Pred.Rounds)
		}
		if row.Pred.Phase1Words > 0 {
			if row.Phase1Words != row.Pred.Phase1Words {
				t.Errorf("%s N=%d w=%d: phase1 words %d, twin predicts %d",
					row.Engine, row.N, row.W, row.Phase1Words, row.Pred.Phase1Words)
			}
			if row.Phase2Words != row.Pred.Phase2Words {
				t.Errorf("%s N=%d w=%d: phase2 words %d, twin predicts %d",
					row.Engine, row.N, row.W, row.Phase2Words, row.Pred.Phase2Words)
			}
		}
		if row.MaxUnits > row.Pred.MaxUnitsBound {
			t.Errorf("%s N=%d w=%d: max units %d exceeds envelope %d",
				row.Engine, row.N, row.W, row.MaxUnits, row.Pred.MaxUnitsBound)
		}
		if !row.WithinBand {
			t.Errorf("%s N=%d w=%d: latency %.0f ns outside band %.0f±%.0f",
				row.Engine, row.N, row.W, row.LatencyNS, row.LatPredictedNS, row.LatBandNS)
		}
	}
	if !res.Ok() {
		t.Error("sweep verdict not ok")
	}
	table := res.Table()
	if !strings.Contains(table, "engine") || !strings.Contains(table, "Fitted models") {
		t.Errorf("table missing sections:\n%s", table)
	}
}

func TestSweepRandomWorkload(t *testing.T) {
	res, err := RunSweep(SweepConfig{
		Ns:       []int{64, 128, 256},
		Ws:       []int{2, 4},
		Engines:  []string{EnginePADR},
		Workload: WorkloadRandom,
		Reps:     2,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.ExactOK {
			t.Errorf("random workload N=%d w=%d: exact quantities mismatch (rounds %d/%d)",
				row.N, row.W, row.Rounds, row.Pred.Rounds)
		}
		if row.M <= row.W {
			t.Errorf("random workload should carry filler comms: m=%d w=%d", row.M, row.W)
		}
	}
}

func TestSweepShardedOnline(t *testing.T) {
	res, err := RunSweep(SweepConfig{
		Ns:      []int{64, 128, 256},
		Ws:      []int{2, 4},
		Engines: []string{EngineOnlineSharded},
		Reps:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Rounds != row.Pred.Rounds {
			t.Errorf("sharded online N=%d w=%d: rounds %d, twin predicts %d",
				row.N, row.W, row.Rounds, row.Pred.Rounds)
		}
	}
}

// TestSweepHybridWorkloads runs the hybrid engine over its adversarial
// set families: rows flip to bound scoring (rounds ≤ the FirstFit
// comparator, units ≤ 3·bound) and the ledger entries carry the bound
// instead of an exact prediction.
func TestSweepHybridWorkloads(t *testing.T) {
	for _, workload := range []string{WorkloadBitrev, WorkloadCrossing} {
		res, err := RunSweep(SweepConfig{
			Ns:       []int{32, 64, 128},
			Ws:       []int{2, 4},
			Engines:  []string{EngineHybrid},
			Workload: workload,
			Reps:     2,
			Seed:     3,
		})
		if err != nil {
			t.Fatalf("%s: %v", workload, err)
		}
		for _, row := range res.Rows {
			if row.RoundsBound <= 0 {
				t.Fatalf("%s N=%d w=%d: hybrid row missing rounds bound", workload, row.N, row.W)
			}
			if row.Rounds > row.RoundsBound {
				t.Errorf("%s N=%d w=%d: %d rounds exceed FirstFit bound %d",
					workload, row.N, row.W, row.Rounds, row.RoundsBound)
			}
			if !row.ExactOK {
				t.Errorf("%s N=%d w=%d: bound scoring failed (rounds %d/%d, units %d)",
					workload, row.N, row.W, row.Rounds, row.RoundsBound, row.MaxUnits)
			}
		}
		sawBoundRounds := false
		for _, e := range res.Entries() {
			if strings.HasSuffix(e.Bench, "/rounds") {
				if e.Exact || !e.Bound {
					t.Errorf("%s: hybrid rounds entry must be Bound, not Exact: %+v", workload, e)
				}
				sawBoundRounds = true
			}
		}
		if !sawBoundRounds {
			t.Errorf("%s: no rounds entries emitted", workload)
		}
	}
}

func TestPredictClosedForms(t *testing.T) {
	p := Predict(EnginePADR, WorkloadChain, 256, 16)
	if p.Rounds != 16 || p.Phase1Words != 510 || p.Phase2Words != 16*510 || p.MaxUnitsBound != 6 {
		t.Errorf("chain prediction = %+v", p)
	}
	p = Predict(EngineOnline, WorkloadRandom, 256, 16)
	if p.Phase1Words != 0 || p.Phase2Words != 0 {
		t.Errorf("online prediction must not claim word counts: %+v", p)
	}
	if p.MaxUnitsBound != 3*(8+2) {
		t.Errorf("random-set envelope = %d, want 30", p.MaxUnitsBound)
	}
}

func TestFitLatencyRecoversPlantedModel(t *testing.T) {
	// Synthetic measurements from a known linear law: 1000 + 2·words.
	var ms []Measurement
	for _, n := range []int{64, 128, 256} {
		for _, w := range []int{2, 4, 8} {
			words := float64((2*n - 2) * (w + 1))
			ms = append(ms, Measurement{Engine: EnginePADR, N: n, W: w, M: w,
				LatencyNS: 1000 + 2*words})
		}
	}
	m, err := FitLatency(EnginePADR, ms)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coeffs[0]-1000) > 1e-6 || math.Abs(m.Coeffs[1]-2) > 1e-9 {
		t.Fatalf("coeffs = %v", m.Coeffs)
	}
	if m.ResidMax > 1e-6 {
		t.Fatalf("exact law must have ~zero residuals, got %v", m.ResidMax)
	}
	pred := m.PredictNS(512, 16, 16)
	want := 1000 + 2*float64((2*512-2)*17)
	if math.Abs(pred-want) > 1e-6 {
		t.Fatalf("prediction %v, want %v", pred, want)
	}
	// The band floor keeps tiny residuals from producing a zero band.
	if m.BandNS(0) < BandFloorNS {
		t.Error("band must respect the floor")
	}
	if _, err := FitLatency("nope", ms); err == nil {
		t.Error("fitting an unmeasured engine must error")
	}
}

// The protocol dimension: the HTTP and wire serve engines share one work
// model but fit independently, so a mixed measurement set yields two
// models whose intercepts carry each protocol's transport cost.
func TestFitLatencyPerProtocol(t *testing.T) {
	var ms []Measurement
	for _, n := range []int{64, 128, 256} {
		for _, w := range []int{2, 4, 8} {
			words := float64((2*n - 2) * (w + 1))
			// Same scheduling work, different per-request overhead: the
			// HTTP path pays 50µs of framing per request, the wire path 2µs.
			ms = append(ms,
				Measurement{Engine: EngineServeHTTP, N: n, W: w, M: w,
					LatencyNS: 50_000 + 2*words + 100*float64(w)},
				Measurement{Engine: EngineServeWire, N: n, W: w, M: w,
					LatencyNS: 2_000 + 2*words + 100*float64(w)})
		}
	}
	httpM, err := FitLatency(EngineServeHTTP, ms)
	if err != nil {
		t.Fatal(err)
	}
	wireM, err := FitLatency(EngineServeWire, ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(httpM.Coeffs) != 3 || httpM.FeatureNames[2] != "requests" {
		t.Fatalf("serve model shape: %v %v", httpM.Coeffs, httpM.FeatureNames)
	}
	if math.Abs(httpM.Coeffs[0]-50_000) > 1e-4 || math.Abs(wireM.Coeffs[0]-2_000) > 1e-4 {
		t.Fatalf("intercepts: http %v wire %v — protocols not fitted independently",
			httpM.Coeffs[0], wireM.Coeffs[0])
	}
	if math.Abs(httpM.Coeffs[1]-wireM.Coeffs[1]) > 1e-6 {
		t.Errorf("shared work term drifted: http %v wire %v", httpM.Coeffs[1], wireM.Coeffs[1])
	}
	if httpM.ResidMax > 1e-4 || wireM.ResidMax > 1e-4 {
		t.Errorf("exact laws must fit exactly: %v %v", httpM.ResidMax, wireM.ResidMax)
	}
}

func TestSweepEntriesCarryPredictions(t *testing.T) {
	res, err := RunSweep(SweepConfig{
		Ns: []int{32, 64, 128}, Ws: []int{2, 4},
		Engines: []string{EnginePADR}, Reps: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries := res.Entries()
	// 6 points × 5 metrics (rounds, p1, p2, units, latency).
	if len(entries) != 30 {
		t.Fatalf("entries = %d, want 30", len(entries))
	}
	exact, bound, banded := 0, 0, 0
	for _, e := range entries {
		switch {
		case e.Exact:
			exact++
			if e.Value != e.Predicted {
				t.Errorf("%s: exact entry %v != predicted %v", e.Bench, e.Value, e.Predicted)
			}
		case e.Bound:
			bound++
		case e.Unit == "ns/op":
			banded++
			if e.Samples != 2 {
				t.Errorf("%s: samples = %d", e.Bench, e.Samples)
			}
		}
	}
	if exact != 18 || bound != 6 || banded != 6 {
		t.Errorf("entry classes: exact=%d bound=%d banded=%d", exact, bound, banded)
	}
}

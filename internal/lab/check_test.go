package lab

import (
	"strings"
	"testing"
)

// series builds n history entries plus one latest entry for one bench key.
func series(bench, unit string, history []float64, latest float64) []Entry {
	st := testStamp()
	var out []Entry
	for _, v := range history {
		out = append(out, st.Apply(Entry{Bench: bench, Unit: unit, Value: v}))
	}
	out = append(out, st.Apply(Entry{Bench: bench, Unit: unit, Value: latest}))
	return out
}

func TestCheckStableSeriesPasses(t *testing.T) {
	entries := series("BenchmarkX", "ns/op", []float64{100, 102, 98, 101}, 103)
	vs, ok := Check(entries, CheckOptions{})
	if !ok || len(vs) != 1 || vs[0].Status != StatusOK {
		t.Fatalf("verdicts = %v ok=%v", vs, ok)
	}
	if vs[0].History != 4 {
		t.Errorf("history = %d", vs[0].History)
	}
}

// TestCheckFlagsInjectedRegression is the acceptance criterion: an
// artificially injected slowdown beyond the noise band must fail the gate.
func TestCheckFlagsInjectedRegression(t *testing.T) {
	entries := series("BenchmarkX", "ns/op", []float64{100, 102, 98, 101, 99}, 210)
	vs, ok := Check(entries, CheckOptions{})
	if ok {
		t.Fatal("2x slowdown must fail the gate")
	}
	if vs[0].Status != StatusRegression {
		t.Fatalf("status = %v", vs[0].Status)
	}
	if !vs[0].Status.Failed() {
		t.Error("regression must report Failed")
	}
}

func TestCheckDirections(t *testing.T) {
	// Throughput: higher is better, a drop regresses.
	entries := series("BenchmarkThroughput", "req/s", []float64{1000, 990, 1010}, 500)
	if _, ok := Check(entries, CheckOptions{}); ok {
		t.Error("halved throughput must fail")
	}
	// An improvement in the good direction passes, marked improved.
	vs, ok := Check(series("BenchmarkX", "ns/op", []float64{100, 101, 99}, 40), CheckOptions{})
	if !ok || vs[0].Status != StatusImproved {
		t.Errorf("improvement: %v ok=%v", vs, ok)
	}
	// Unknown units are untracked, never gated.
	vs, ok = Check(series("weird", "florps", []float64{1, 1, 1}, 99), CheckOptions{})
	if !ok || vs[0].Status != StatusUntracked {
		t.Errorf("untracked: %v ok=%v", vs, ok)
	}
}

func TestCheckYoungSeriesIsNew(t *testing.T) {
	vs, ok := Check(series("BenchmarkX", "ns/op", []float64{100}, 500), CheckOptions{})
	if !ok || vs[0].Status != StatusNew {
		t.Errorf("young series: %v ok=%v", vs, ok)
	}
}

func TestCheckExactAndBound(t *testing.T) {
	st := testStamp()
	good := st.Apply(Entry{Bench: "lab/padr/chain/N=64/w=4/rounds", Unit: "rounds",
		Value: 4, Predicted: 4, Exact: true})
	bad := st.Apply(Entry{Bench: "lab/padr/chain/N=64/w=8/rounds", Unit: "rounds",
		Value: 9, Predicted: 8, Exact: true})
	underBound := st.Apply(Entry{Bench: "lab/padr/chain/N=64/w=4/max_units", Unit: "units",
		Value: 6, Predicted: 6, Bound: true})
	overBound := st.Apply(Entry{Bench: "lab/padr/chain/N=64/w=8/max_units", Unit: "units",
		Value: 9, Predicted: 6, Bound: true})

	// Verdicts come back sorted by series key: max_units before rounds.
	vs, ok := Check([]Entry{good, underBound}, CheckOptions{})
	if !ok || vs[0].Status != StatusBoundOK || vs[1].Status != StatusExactOK {
		t.Fatalf("clean run: %v ok=%v", vs, ok)
	}
	if _, ok := Check([]Entry{good, bad}, CheckOptions{}); ok {
		t.Error("exact mismatch must fail")
	}
	if _, ok := Check([]Entry{underBound, overBound}, CheckOptions{}); ok {
		t.Error("bound excess must fail")
	}
}

func TestCheckSplitsSeriesByMachine(t *testing.T) {
	st := testStamp()
	other := st
	other.Machine.CPU = "OtherCPU"
	var entries []Entry
	// Fast machine history at ~100, slow machine history at ~1000; the
	// slow machine's 1000 must not read as a regression of the fast one.
	for _, v := range []float64{100, 101, 99, 100} {
		entries = append(entries, st.Apply(Entry{Bench: "B", Unit: "ns/op", Value: v}))
	}
	for _, v := range []float64{1000, 1010, 990, 1005} {
		entries = append(entries, other.Apply(Entry{Bench: "B", Unit: "ns/op", Value: v}))
	}
	vs, ok := Check(entries, CheckOptions{})
	if !ok || len(vs) != 2 {
		t.Fatalf("per-machine series: %v ok=%v", vs, ok)
	}
	for _, v := range vs {
		if v.Status != StatusOK {
			t.Errorf("cross-machine bleed: %v", v)
		}
	}
}

// TestCheckVerdictGolden pins the human-readable verdict output the CI
// log (and the cstlab golden tests) depend on.
func TestCheckVerdictGolden(t *testing.T) {
	st := testStamp()
	entries := series("BenchmarkX", "ns/op", []float64{100, 100, 100, 100}, 200)
	entries = append(entries, st.Apply(Entry{Bench: "lab/padr/chain/N=64/w=4/rounds",
		Unit: "rounds", Value: 4, Predicted: 4, Exact: true}))
	vs, ok := Check(entries, CheckOptions{})
	var b strings.Builder
	if err := WriteVerdicts(&b, vs, ok); err != nil {
		t.Fatal(err)
	}
	want := `REGRESSION      BenchmarkX [ns/op] value=200 band=[75, 125] history=4: 60.0% above the band ceiling
exact-ok        lab/padr/chain/N=64/w=4/rounds [rounds] value=4 predicted=4
check: FAIL (1 exact-ok, 1 REGRESSION)
`
	if b.String() != want {
		t.Errorf("verdict output:\n%s\nwant:\n%s", b.String(), want)
	}
}

// Package lab is the hypothesis-driven perf lab: an analytical twin of the
// CST engines plus the machinery to test it against measurements and to
// keep a time series of those measurements honest.
//
// The twin (Predict, LatencyModel) computes what a run *should* cost from
// the paper's closed forms — Theorems 4/5 (a width-w oriented well-nested
// set schedules in exactly w rounds), the Theorem 5 efficiency claim (one
// control word per link per wave: 2N−2 words in Phase 1 and per Phase 2
// round) and the Theorem 8 power envelope (O(1) configuration changes per
// switch, audited as 3·(log₂N+2) units on adversarial inputs) — plus
// per-operation constants fitted by least squares for wall-clock latency,
// which no theorem supplies.
//
// The sweep runner (RunSweep) drives the padr, sim and online engines over
// a (N, w) grid, compares measured against predicted, and splits the
// quantities into two classes: theorem-exact (rounds, control words — any
// deviation is a bug, not noise) and fitted (latency — judged against a
// noise band derived from the fit's own residuals).
//
// The ledger (Entry, Append, ReadLedger) is the schema-versioned JSONL
// time series every measurement lands in, stamped with machine
// fingerprint, git SHA and timestamp so runs from different hosts and
// commits never silently pollute each other's noise bands. Check replays
// the ledger and exit-codes any regression beyond the band fitted from
// history — the CI gate that makes "this PR is faster" a measured claim.
package lab

import (
	"fmt"
	"math"

	"cst/internal/audit"
	"cst/internal/stats"
)

// Engines the lab can drive. "online-sharded" is the online batcher with
// LCA-disjoint subtree sharding enabled.
const (
	EnginePADR          = "padr"
	EngineSim           = "sim"
	EngineOnline        = "online"
	EngineOnlineSharded = "online-sharded"
	// EngineHybrid is the composite planner for arbitrary (possibly
	// non-well-nested) sets: decompose, peel well-nested batches, color
	// the residual. It has no closed-form round count — its guarantee is
	// an inequality (never worse than pure FirstFit coloring), so its
	// rounds ledger entry is a bound, not an exact match.
	EngineHybrid = "hybrid"
	// EngineDelta is the incremental scheduler: padr.Engine.ApplyRounds
	// over a long-lived session set. Its cost model is the point of the
	// delta path — work scales with |delta|·log₂N (dirty root paths), not
	// with N like a from-scratch run. Measurements come from RunDeltaSweep.
	EngineDelta = "delta"
)

// Serving protocols as twin engines: client-observed request latency
// against a live scheduling pool, one model per protocol so the HTTP/JSON
// and binary-wire paths get independently fitted constants (the work
// terms are identical — the protocols differ exactly in the per-request
// intercept, which is the quantity the wire path exists to shrink).
// Measurements come from cstload runs, not RunSweep.
const (
	EngineServeHTTP = "serve-http"
	EngineServeWire = "serve-wire"
)

// Workload families the lab sweeps. All are deterministic for a given
// (N, w, seed), so a prediction names an exact input.
const (
	// WorkloadChain is comm.NestedChain: w fully nested root-crossing
	// communications (the paper's Fig. 2-style worst case for width).
	WorkloadChain = "chain"
	// WorkloadSplit is comm.SplitChain: the churn-adversarial chain split
	// across the root's grandchild subtrees.
	WorkloadSplit = "split"
	// WorkloadRandom is comm.RandomWellNestedWidth with the sweep seed:
	// planted width w plus random well-nested filler.
	WorkloadRandom = "random"
	// WorkloadBitrev is comm.BitReversal: the crossing-heavy FFT pairing
	// (w is ignored — the permutation fixes the set). Hybrid-only.
	WorkloadBitrev = "bitrev"
	// WorkloadCrossing is comm.CrossingPairs: w pairwise-crossing
	// communications with alternating orientations. Hybrid-only.
	WorkloadCrossing = "crossing"
)

// Prediction is the analytical twin's closed-form forecast for one run.
// Rounds and word counts are theorem-exact: the engines must match them
// bit for bit. MaxUnitsBound is an envelope: measured units at the hottest
// switch must not exceed it.
type Prediction struct {
	// Rounds is Theorem 4/5: exactly the set's link width.
	Rounds int
	// Phase1Words is the Theorem 5 efficiency budget: one convergecast
	// word per link, 2N−2. Zero for engines that do not expose word
	// counts (online).
	Phase1Words int
	// Phase2Words is one broadcast word per link per round: Rounds·(2N−2).
	// Zero when Phase1Words is zero.
	Phase2Words int
	// MaxUnitsBound is the Theorem 8 power envelope for the hottest
	// switch: 6 units on the deterministic chain workloads (measured
	// tight in experiments E2/E3), 3·(log₂N+2) on random sets (the
	// audit package's adaptive Greedy-rule envelope).
	MaxUnitsBound int
}

// Predict returns the twin's forecast for scheduling one width-w oriented
// well-nested set on an N-leaf tree with the given engine and workload
// family.
func Predict(engine, workload string, n, w int) Prediction {
	p := Prediction{Rounds: w}
	switch engine {
	case EnginePADR, EngineSim:
		p.Phase1Words = 2*n - 2
		p.Phase2Words = w * (2*n - 2)
	}
	switch workload {
	case WorkloadChain, WorkloadSplit:
		// E2/E3: every chain-family run holds the hottest switch at or
		// under two full configuration builds (2 × 3 units).
		p.MaxUnitsBound = 6
	default:
		p.MaxUnitsBound = audit.DefaultUnitsBound(n)
	}
	return p
}

// LatencyModel is the fitted half of the twin: wall-clock nanoseconds as a
// linear function of closed-form work terms, with per-operation constants
// estimated by least squares over a calibration sweep. The residuals of
// that fit define the noise band a measurement is judged against.
type LatencyModel struct {
	// Engine names the engine the constants belong to.
	Engine string
	// Coeffs are the fitted per-operation constants, one per feature.
	Coeffs []float64
	// FeatureNames documents the model, e.g. ["1", "words", "waves"].
	FeatureNames []string
	// ResidMax and ResidMAD summarize |measured − predicted| over the
	// calibration points.
	ResidMax, ResidMAD float64
}

// Band parameters: a measurement is within the model's noise band when
// |measured − predicted| ≤ max(BandResidK·ResidMax, BandRel·predicted,
// BandFloorNS). The residual term guarantees the calibration points
// themselves sit inside the band; the relative and absolute floors keep
// the band honest on extrapolated points and tiny latencies.
const (
	BandResidK  = 1.5
	BandRel     = 0.25
	BandFloorNS = 20_000
)

// latFeatures is the twin's work model: the words term is the total
// control-word traffic (2N−2)·(w+1) — Phase 1 plus w Phase 2 waves — and
// is the dominant cost for the sequential engine. The concurrent sim adds
// a per-wave barrier term (w+1 goroutine rendezvous), and the online
// batcher adds a per-request admission term (m submissions). The serve
// engines share the online shape — scheduling work plus per-request
// admission — with the protocol's framing/transport cost landing in the
// intercept, which is why each protocol is its own engine.
func latFeatures(engine string, n, w, m int) []float64 {
	words := float64((2*n - 2) * (w + 1))
	switch engine {
	case EngineSim:
		return []float64{1, words, float64(w + 1)}
	case EngineOnline, EngineOnlineSharded, EngineServeHTTP, EngineServeWire, EngineHybrid:
		return []float64{1, words, float64(m)}
	case EngineDelta:
		// The incremental apply re-floats control words only along the
		// mutated communications' root paths: m is |delta| and each dirty
		// path is O(log N) nodes, so the work term is m·log₂N — crucially
		// independent of the 2N−2 full-tree word count above.
		return []float64{1, float64(m) * math.Log2(float64(n))}
	default:
		return []float64{1, words}
	}
}

// latFeatureNames mirrors latFeatures.
func latFeatureNames(engine string) []string {
	switch engine {
	case EngineSim:
		return []string{"1", "words", "waves"}
	case EngineOnline, EngineOnlineSharded, EngineServeHTTP, EngineServeWire, EngineHybrid:
		return []string{"1", "words", "requests"}
	case EngineDelta:
		return []string{"1", "delta·log2N"}
	default:
		return []string{"1", "words"}
	}
}

// FitLatency estimates the per-operation constants for one engine from
// calibration measurements. It needs at least as many points as the
// engine's feature count (2 or 3).
func FitLatency(engine string, ms []Measurement) (*LatencyModel, error) {
	var x [][]float64
	var y []float64
	for _, m := range ms {
		if m.Engine != engine {
			continue
		}
		x = append(x, latFeatures(engine, m.N, m.W, m.M))
		y = append(y, m.LatencyNS)
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("lab: no measurements for engine %q", engine)
	}
	coeffs, err := stats.LeastSquares(x, y)
	if err != nil {
		return nil, fmt.Errorf("lab: fitting %s latency: %w", engine, err)
	}
	m := &LatencyModel{Engine: engine, Coeffs: coeffs, FeatureNames: latFeatureNames(engine)}
	resids := make([]float64, len(x))
	for i := range x {
		resids[i] = abs(y[i] - dot(coeffs, x[i]))
		if resids[i] > m.ResidMax {
			m.ResidMax = resids[i]
		}
	}
	m.ResidMAD = stats.Median(resids)
	return m, nil
}

// PredictNS returns the model's latency forecast in nanoseconds (clamped
// at 0: a fitted intercept can push tiny inputs negative).
func (m *LatencyModel) PredictNS(n, w, mm int) float64 {
	p := dot(m.Coeffs, latFeatures(m.Engine, n, w, mm))
	if p < 0 {
		return 0
	}
	return p
}

// BandNS returns the noise band half-width around a prediction.
func (m *LatencyModel) BandNS(predicted float64) float64 {
	band := BandResidK * m.ResidMax
	if rel := BandRel * predicted; rel > band {
		band = rel
	}
	if band < BandFloorNS {
		band = BandFloorNS
	}
	return band
}

// String renders the fitted model, e.g.
// "padr: 12034 + 3.1·words (resid max 8123 ns)".
func (m *LatencyModel) String() string {
	s := m.Engine + ": "
	for i, c := range m.Coeffs {
		if i > 0 {
			s += " + "
		}
		if m.FeatureNames[i] == "1" {
			s += fmt.Sprintf("%.0f", c)
		} else {
			s += fmt.Sprintf("%.2f·%s", c, m.FeatureNames[i])
		}
	}
	return s + fmt.Sprintf(" ns (resid max %.0f, mad %.0f)", m.ResidMax, m.ResidMAD)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

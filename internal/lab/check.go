package lab

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cst/internal/stats"
)

// CheckOptions tunes the regression gate.
type CheckOptions struct {
	// K scales the MAD-derived band half-width; <= 0 selects 4 (wall
	// clocks on shared CI runners are long-tailed; a tight band would
	// cry wolf).
	K float64
	// SlackRel is the minimum relative half-width; <= 0 selects 0.25.
	SlackRel float64
	// MinHistory is how many prior runs a series needs before the band
	// is trusted; <= 0 selects 3. Younger series pass as "new".
	MinHistory int
}

func (o CheckOptions) withDefaults() CheckOptions {
	if o.K <= 0 {
		o.K = 4
	}
	if o.SlackRel <= 0 {
		o.SlackRel = 0.25
	}
	if o.MinHistory <= 0 {
		o.MinHistory = 3
	}
	return o
}

// Status classifies one series' latest entry.
type Status string

const (
	// StatusOK: inside the noise band fitted from history.
	StatusOK Status = "ok"
	// StatusImproved: beyond the band in the good direction.
	StatusImproved Status = "improved"
	// StatusRegression: beyond the band in the bad direction.
	StatusRegression Status = "REGRESSION"
	// StatusNew: not enough history to fit a band.
	StatusNew Status = "new"
	// StatusExactOK: a theorem-exact quantity matches the twin's prediction.
	StatusExactOK Status = "exact-ok"
	// StatusExactMismatch: a theorem-exact quantity deviates from the twin.
	StatusExactMismatch Status = "EXACT-MISMATCH"
	// StatusBoundOK: the measured value sits under its analytical envelope.
	StatusBoundOK Status = "bound-ok"
	// StatusBoundExceeded: the measured value exceeds its envelope.
	StatusBoundExceeded Status = "BOUND-EXCEEDED"
	// StatusUntracked: a unit the gate has no direction for.
	StatusUntracked Status = "untracked"
)

// Failed reports whether the status must fail the gate.
func (s Status) Failed() bool {
	return s == StatusRegression || s == StatusExactMismatch || s == StatusBoundExceeded
}

// Verdict is the gate's judgement of one series.
type Verdict struct {
	Bench   string
	Unit    string
	Machine string
	Status  Status
	// Value is the latest entry; Center and Band describe the fitted
	// noise band (when Status is band-based); History counts the prior
	// entries the band was fitted from.
	Value   float64
	Center  float64
	Band    float64
	History int
	// Detail carries the human-readable account for failures.
	Detail string
}

// String renders one verdict line, stable for golden tests.
func (v Verdict) String() string {
	s := fmt.Sprintf("%-15s %s [%s]", v.Status, v.Bench, v.Unit)
	switch v.Status {
	case StatusOK, StatusImproved, StatusRegression:
		s += fmt.Sprintf(" value=%.6g band=[%.6g, %.6g] history=%d",
			v.Value, v.Center-v.Band, v.Center+v.Band, v.History)
	case StatusNew:
		s += fmt.Sprintf(" value=%.6g history=%d", v.Value, v.History)
	case StatusExactOK, StatusExactMismatch, StatusBoundOK, StatusBoundExceeded:
		s += fmt.Sprintf(" value=%.6g predicted=%.6g", v.Value, v.Center)
	}
	if v.Detail != "" {
		s += ": " + v.Detail
	}
	return s
}

// lowerIsBetter resolves a unit's good direction; the second return is
// false for units with no direction (counts are gated by Exact/Bound
// flags, not bands).
func lowerIsBetter(unit string) (lower, directional bool) {
	switch unit {
	case "ns/op", "ns", "s", "seconds", "B/op", "allocs/op":
		return true, true
	case "req/s", "ops/s":
		return false, true
	default:
		return false, false
	}
}

// Check replays a ledger: for every series (bench × unit × machine
// fingerprint) the latest entry is judged — theorem-exact entries against
// their prediction, bounded entries against their envelope, directional
// units against a noise band fitted from the series' history (median ±
// max(K·MAD, SlackRel·median)). It returns the verdicts (sorted by series
// key, failures first within equal keys never happen — one verdict per
// series) and whether the gate passes.
func Check(entries []Entry, opts CheckOptions) ([]Verdict, bool) {
	o := opts.withDefaults()
	order := []string{}
	groups := map[string][]Entry{}
	for _, e := range entries {
		k := e.Key()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], e)
	}
	sort.Strings(order)

	var out []Verdict
	ok := true
	for _, k := range order {
		g := groups[k]
		latest := g[len(g)-1]
		v := Verdict{Bench: latest.Bench, Unit: latest.Unit,
			Machine: latest.Machine.Fingerprint(), Value: latest.Value,
			History: len(g) - 1}

		switch {
		case latest.Exact:
			v.Center = latest.Predicted
			if latest.Value == latest.Predicted {
				v.Status = StatusExactOK
			} else {
				v.Status = StatusExactMismatch
				v.Detail = "theorem-exact quantity deviates from the analytical twin"
			}
		case latest.Bound:
			v.Center = latest.Predicted
			if latest.Value <= latest.Predicted {
				v.Status = StatusBoundOK
			} else {
				v.Status = StatusBoundExceeded
				v.Detail = "measurement exceeds the analytical envelope"
			}
		default:
			lower, directional := lowerIsBetter(latest.Unit)
			if !directional {
				v.Status = StatusUntracked
				break
			}
			if len(g)-1 < o.MinHistory {
				v.Status = StatusNew
				break
			}
			hist := make([]float64, 0, len(g)-1)
			for _, e := range g[:len(g)-1] {
				hist = append(hist, e.Value)
			}
			center := stats.Median(hist)
			band := o.K * stats.MAD(hist)
			if rel := o.SlackRel * center; rel > band {
				band = rel
			}
			v.Center, v.Band = center, band
			switch {
			case lower && latest.Value > center+band:
				v.Status = StatusRegression
				v.Detail = fmt.Sprintf("%.1f%% above the band ceiling",
					100*(latest.Value-(center+band))/(center+band))
			case !lower && latest.Value < center-band:
				v.Status = StatusRegression
				v.Detail = fmt.Sprintf("%.1f%% below the band floor",
					100*((center-band)-latest.Value)/(center-band))
			case lower && latest.Value < center-band:
				v.Status = StatusImproved
			case !lower && latest.Value > center+band:
				v.Status = StatusImproved
			default:
				v.Status = StatusOK
			}
		}
		if v.Status.Failed() {
			ok = false
		}
		out = append(out, v)
	}
	return out, ok
}

// WriteVerdicts renders verdicts with a trailing pass/fail summary line.
func WriteVerdicts(w io.Writer, vs []Verdict, ok bool) error {
	counts := map[Status]int{}
	for _, v := range vs {
		if _, err := fmt.Fprintln(w, v); err != nil {
			return err
		}
		counts[v.Status]++
	}
	var parts []string
	for _, s := range []Status{StatusOK, StatusImproved, StatusExactOK, StatusBoundOK,
		StatusNew, StatusUntracked, StatusRegression, StatusExactMismatch, StatusBoundExceeded} {
		if counts[s] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", counts[s], s))
		}
	}
	verdict := "PASS"
	if !ok {
		verdict = "FAIL"
	}
	_, err := fmt.Fprintf(w, "check: %s (%s)\n", verdict, strings.Join(parts, ", "))
	return err
}

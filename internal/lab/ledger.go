package lab

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// SchemaVersion tags every ledger entry. Readers accept any "cst-lab/"
// schema and error on anything else, so a future v2 can migrate in place.
const SchemaVersion = "cst-lab/v1"

// Machine fingerprints the hardware a measurement ran on. Noise bands are
// only fitted within one fingerprint: a laptop's p50 says nothing about a
// CI runner's.
type Machine struct {
	Goos   string `json:"goos"`
	Goarch string `json:"goarch"`
	CPU    string `json:"cpu,omitempty"`
	NumCPU int    `json:"num_cpu"`
	Host   string `json:"host,omitempty"`
	Go     string `json:"go,omitempty"`
}

// Fingerprint is the grouping key for noise bands: hardware identity
// without the hostname (CI runners are ephemeral but homogeneous).
func (m Machine) Fingerprint() string {
	return fmt.Sprintf("%s/%s/%s/%d", m.Goos, m.Goarch, m.CPU, m.NumCPU)
}

// LocalMachine fingerprints the current host.
func LocalMachine() Machine {
	host, _ := os.Hostname()
	return Machine{
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		CPU:    cpuModel(),
		NumCPU: runtime.NumCPU(),
		Host:   host,
		Go:     runtime.Version(),
	}
}

// cpuModel reads the CPU model name from /proc/cpuinfo (Linux); empty
// elsewhere — the fingerprint then falls back to goos/goarch/numcpu.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return ""
}

// Entry is one measurement in the bench ledger: a (bench, unit, value)
// triple plus the provenance needed to trend it. One sweep run appends
// several entries (rounds, words, units, latency per point); one benchjson
// conversion appends one entry per benchmark.
type Entry struct {
	// Schema is SchemaVersion.
	Schema string `json:"schema"`
	// Time is RFC3339; GitSHA the commit the measurement ran at. Both are
	// injected by the harness (NewStamp), never by the measurement code.
	Time   string `json:"time"`
	GitSHA string `json:"git_sha,omitempty"`
	// Source names the producer: "cstlab", "benchjson", "cstload",
	// "harness" or "convert:<file>".
	Source string `json:"source"`
	// Label is the producer's free-form run label.
	Label string `json:"label,omitempty"`
	// Machine fingerprints where the run happened.
	Machine Machine `json:"machine"`
	// Bench is the series key, e.g. "lab/padr/chain/N=256/w=16/latency"
	// or "BenchmarkServeLatencyP50".
	Bench string `json:"bench"`
	// Unit is the value's unit: "ns/op", "rounds", "words", "units",
	// "allocs/op", "req/s".
	Unit string `json:"unit"`
	// Value is the measurement (a median over Samples runs when > 1).
	Value float64 `json:"value"`
	// Samples is how many raw runs Value aggregates.
	Samples int `json:"samples,omitempty"`
	// Predicted is the analytical twin's forecast, when one exists.
	Predicted float64 `json:"predicted,omitempty"`
	// Exact marks a theorem-exact quantity: Value must equal Predicted,
	// on every machine, always. Any mismatch is a bug.
	Exact bool `json:"exact,omitempty"`
	// Bound marks an envelope: Value must be <= Predicted.
	Bound bool `json:"bound,omitempty"`
}

// Key is the series identity an entry trends under: bench + unit + the
// machine fingerprint (noise is hardware-specific).
func (e Entry) Key() string {
	return e.Bench + "|" + e.Unit + "|" + e.Machine.Fingerprint()
}

// Stamp is the provenance injected into every entry of one run.
type Stamp struct {
	Time    time.Time
	GitSHA  string
	Machine Machine
	Source  string
	Label   string
}

// NewStamp builds the provenance for one run: current time, local machine
// and the repository's HEAD (CST_GIT_SHA overrides; empty when git is
// unavailable).
func NewStamp(source, label string) Stamp {
	return Stamp{
		Time:    time.Now().UTC(),
		GitSHA:  gitSHA(),
		Machine: LocalMachine(),
		Source:  source,
		Label:   label,
	}
}

// gitSHA resolves the current commit: the CST_GIT_SHA environment variable
// (CI injects it) or `git rev-parse --short HEAD`.
func gitSHA() string {
	if sha := os.Getenv("CST_GIT_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Apply fills an entry's provenance fields from the stamp.
func (st Stamp) Apply(e Entry) Entry {
	e.Schema = SchemaVersion
	e.Time = st.Time.Format(time.RFC3339)
	e.GitSHA = st.GitSHA
	e.Machine = st.Machine
	e.Source = st.Source
	if e.Label == "" {
		e.Label = st.Label
	}
	return e
}

// WriteEntries emits entries as JSONL.
func WriteEntries(w io.Writer, entries []Entry) error {
	enc := json.NewEncoder(w)
	for i := range entries {
		if err := enc.Encode(&entries[i]); err != nil {
			return err
		}
	}
	return nil
}

// Append appends entries to the ledger file, creating it if needed.
func Append(path string, entries []Entry) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := WriteEntries(f, entries); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadEntries parses a JSONL ledger stream. Blank lines are skipped; a
// malformed line or a non-"cst-lab/" schema is an error naming the line.
func ReadEntries(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Entry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("lab: ledger line %d: %v", line, err)
		}
		if !strings.HasPrefix(e.Schema, "cst-lab/") {
			return nil, fmt.Errorf("lab: ledger line %d: unknown schema %q", line, e.Schema)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadLedger reads a ledger file; a missing file is an empty ledger (the
// trajectory has to start somewhere).
func ReadLedger(path string) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	return ReadEntries(f)
}

package lab

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"cst/internal/comm"
	"cst/internal/hybrid"
	"cst/internal/online"
	"cst/internal/padr"
	"cst/internal/sim"
	"cst/internal/stats"
	"cst/internal/topology"
)

// SweepConfig describes a parameter sweep.
type SweepConfig struct {
	// Ns and Ws span the grid (every N must be a power of two >= 4·max W
	// for the split workload to fit).
	Ns, Ws []int
	// Engines selects which engines run each grid point.
	Engines []string
	// Workload is the set family (WorkloadChain, WorkloadSplit,
	// WorkloadRandom).
	Workload string
	// Reps is how many timed runs aggregate into one measurement
	// (median); <= 0 selects 5.
	Reps int
	// Seed drives the random workload.
	Seed int64
}

// Measurement is one grid point's measured quantities.
type Measurement struct {
	Engine   string
	Workload string
	// N is the tree's leaf count, W the set's link width, M the number of
	// communications in the set (M == W for the chain families).
	N, W, M int
	// Rounds, Phase1Words, Phase2Words and MaxUnits are the engine's
	// reported counts (words are 0 where the engine does not expose
	// them).
	Rounds      int
	Phase1Words int
	Phase2Words int
	MaxUnits    int
	// RoundsBound is the hybrid engine's measured comparator: the pure
	// FirstFit round count on the same decomposition, which the composite
	// plan must not exceed. Zero for every other engine, and the switch
	// that flips the row from theorem-exact scoring to bound scoring.
	RoundsBound int
	// LatencyNS is the median wall-clock schedule time over Reps runs;
	// LatSamples holds every rep.
	LatencyNS  float64
	LatSamples []float64
}

// Row is one grid point's measured-vs-predicted comparison.
type Row struct {
	Measurement
	Pred Prediction
	// LatPredictedNS and LatBandNS come from the engine's fitted latency
	// model; WithinBand reports |measured − predicted| <= band.
	LatPredictedNS float64
	LatBandNS      float64
	WithinBand     bool
	// ExactOK reports that every theorem-exact quantity (rounds, words)
	// matched the prediction, and measured units stayed under the bound.
	ExactOK bool
}

// SweepResult is a completed sweep: rows plus the fitted per-engine
// latency models.
type SweepResult struct {
	Config SweepConfig
	Rows   []Row
	Models map[string]*LatencyModel
}

// RunSweep measures every (engine, N, w) grid point, fits each engine's
// latency model over its own grid, and scores measured vs predicted.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	if cfg.Reps <= 0 {
		cfg.Reps = 5
	}
	if cfg.Workload == "" {
		cfg.Workload = WorkloadChain
	}
	if len(cfg.Engines) == 0 {
		cfg.Engines = []string{EnginePADR, EngineSim, EngineOnline}
	}
	var ms []Measurement
	for _, engine := range cfg.Engines {
		for _, n := range cfg.Ns {
			for _, w := range cfg.Ws {
				m, err := measure(engine, cfg.Workload, n, w, cfg.Reps, cfg.Seed)
				if err != nil {
					return nil, fmt.Errorf("lab: %s N=%d w=%d: %w", engine, n, w, err)
				}
				ms = append(ms, *m)
			}
		}
	}
	res := &SweepResult{Config: cfg, Models: map[string]*LatencyModel{}}
	for _, engine := range cfg.Engines {
		model, err := FitLatency(engine, ms)
		if err != nil {
			return nil, err
		}
		res.Models[engine] = model
	}
	for _, m := range ms {
		model := res.Models[m.Engine]
		row := Row{
			Measurement:    m,
			Pred:           Predict(m.Engine, m.Workload, m.N, m.W),
			LatPredictedNS: model.PredictNS(m.N, m.W, m.M),
		}
		row.LatBandNS = model.BandNS(row.LatPredictedNS)
		row.WithinBand = abs(m.LatencyNS-row.LatPredictedNS) <= row.LatBandNS
		if m.RoundsBound > 0 {
			// Bound scoring (hybrid): no closed form predicts the
			// composite round count, but it must never exceed the pure
			// FirstFit comparator, and each switch rebuilds at most once
			// per round (3 units per build) — so 3·bound envelopes the
			// hottest switch.
			row.ExactOK = m.Rounds <= m.RoundsBound && m.MaxUnits <= 3*m.RoundsBound
		} else {
			row.ExactOK = m.Rounds == row.Pred.Rounds &&
				(row.Pred.Phase1Words == 0 || m.Phase1Words == row.Pred.Phase1Words) &&
				(row.Pred.Phase2Words == 0 || m.Phase2Words == row.Pred.Phase2Words) &&
				m.MaxUnits <= row.Pred.MaxUnitsBound
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// buildSet constructs the workload's communication set.
func buildSet(workload string, n, w int, seed int64) (*comm.Set, error) {
	switch workload {
	case WorkloadChain:
		return comm.NestedChain(n, w)
	case WorkloadSplit:
		return comm.SplitChain(n, w)
	case WorkloadRandom:
		rng := rand.New(rand.NewSource(seed))
		return comm.RandomWellNestedWidth(rng, n, w+n/16, w)
	case WorkloadBitrev:
		return comm.BitReversal(n)
	case WorkloadCrossing:
		return comm.CrossingPairs(n, w)
	default:
		return nil, fmt.Errorf("unknown workload %q", workload)
	}
}

// measure runs one grid point: Reps timed schedules of the same set,
// reporting the engine's counts from the final run and the median latency.
func measure(engine, workload string, n, w, reps int, seed int64) (*Measurement, error) {
	tree, err := topology.New(n)
	if err != nil {
		return nil, err
	}
	set, err := buildSet(workload, n, w, seed)
	if err != nil {
		return nil, err
	}
	// Each rep consumes its own clone so no engine-side mutation of the
	// set can leak between reps; clones are cut outside the timed region.
	clones := make([]*comm.Set, reps)
	for i := range clones {
		clones[i] = set.Clone()
	}
	m := &Measurement{Engine: engine, Workload: workload, N: n, W: w, M: set.Len()}

	switch engine {
	case EnginePADR:
		eng, err := padr.New(tree, set.Clone())
		if err != nil {
			return nil, err
		}
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			if err := eng.Reset(clones[i]); err != nil {
				return nil, err
			}
			res, err := eng.Run()
			if err != nil {
				return nil, err
			}
			m.LatSamples = append(m.LatSamples, float64(time.Since(t0).Nanoseconds()))
			m.Rounds = res.Rounds
			m.Phase1Words = res.UpWords
			m.Phase2Words = res.DownWords
			m.MaxUnits = res.Report.MaxUnits()
		}

	case EngineSim:
		fabric := sim.NewFabric(tree)
		defer fabric.Close()
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			res, err := fabric.Run(clones[i])
			if err != nil {
				return nil, err
			}
			m.LatSamples = append(m.LatSamples, float64(time.Since(t0).Nanoseconds()))
			m.Rounds = res.Rounds
			m.Phase1Words = res.Phase1Messages
			m.Phase2Words = res.Phase2Messages
			m.MaxUnits = res.Report.MaxUnits()
		}

	case EngineOnline, EngineOnlineSharded:
		for i := 0; i < reps; i++ {
			var opts []online.Option
			if engine == EngineOnlineSharded {
				opts = append(opts, online.WithSharding())
			}
			osim, err := online.New(n, opts...)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			for _, c := range clones[i].Comms {
				if err := osim.Submit(c); err != nil {
					return nil, err
				}
			}
			if err := osim.Drain(); err != nil {
				return nil, err
			}
			st := osim.Finish()
			m.LatSamples = append(m.LatSamples, float64(time.Since(t0).Nanoseconds()))
			if st.Leftover != 0 || len(st.Completed) != set.Len() {
				return nil, fmt.Errorf("online run lost requests: %d of %d completed", len(st.Completed), set.Len())
			}
			m.Rounds = st.Rounds
			m.MaxUnits = st.Report.MaxUnits()
		}

	case EngineHybrid:
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			plan, err := hybrid.Schedule(tree, clones[i])
			if err != nil {
				return nil, err
			}
			m.LatSamples = append(m.LatSamples, float64(time.Since(t0).Nanoseconds()))
			m.Rounds = plan.Rounds
			m.RoundsBound = plan.FirstFitRounds
			m.MaxUnits = plan.Report.MaxUnits()
		}

	default:
		return nil, fmt.Errorf("unknown engine %q", engine)
	}
	m.LatencyNS = stats.Median(m.LatSamples)
	return m, nil
}

// BenchName is the ledger series key for one grid point's metric.
func BenchName(engine, workload string, n, w int, metric string) string {
	return fmt.Sprintf("lab/%s/%s/N=%d/w=%d/%s", engine, workload, n, w, metric)
}

// Entries converts a sweep into ledger entries: theorem-exact rounds and
// word counts, bounded power units, and banded latency. The caller stamps
// provenance via Stamp.Apply.
func (r *SweepResult) Entries() []Entry {
	var out []Entry
	for _, row := range r.Rows {
		name := func(metric string) string {
			return BenchName(row.Engine, row.Workload, row.N, row.W, metric)
		}
		if row.RoundsBound > 0 {
			// Hybrid rows: rounds are bounded by the FirstFit comparator,
			// not predicted by a theorem; units by 3·bound (one rebuild
			// per switch per round).
			out = append(out, Entry{Bench: name("rounds"), Unit: "rounds",
				Value: float64(row.Rounds), Predicted: float64(row.RoundsBound), Bound: true})
			out = append(out, Entry{Bench: name("max_units"), Unit: "units",
				Value: float64(row.MaxUnits), Predicted: float64(3 * row.RoundsBound), Bound: true})
		} else {
			out = append(out, Entry{Bench: name("rounds"), Unit: "rounds",
				Value: float64(row.Rounds), Predicted: float64(row.Pred.Rounds), Exact: true})
			if row.Pred.Phase1Words > 0 {
				out = append(out, Entry{Bench: name("phase1_words"), Unit: "words",
					Value: float64(row.Phase1Words), Predicted: float64(row.Pred.Phase1Words), Exact: true})
				out = append(out, Entry{Bench: name("phase2_words"), Unit: "words",
					Value: float64(row.Phase2Words), Predicted: float64(row.Pred.Phase2Words), Exact: true})
			}
			out = append(out, Entry{Bench: name("max_units"), Unit: "units",
				Value: float64(row.MaxUnits), Predicted: float64(row.Pred.MaxUnitsBound), Bound: true})
		}
		out = append(out, Entry{Bench: name("latency"), Unit: "ns/op",
			Value: row.LatencyNS, Samples: len(row.LatSamples), Predicted: row.LatPredictedNS})
	}
	return out
}

// Table renders the measured-vs-predicted comparison as markdown.
func (r *SweepResult) Table() string {
	tab := stats.NewTable("engine", "N", "w", "rounds m/p", "p1 words m/p", "p2 words m/p",
		"units m/bound", "latency µs", "predicted µs", "band ±µs", "verdict")
	for _, row := range r.Rows {
		p1 := "-"
		p2 := "-"
		if row.Pred.Phase1Words > 0 {
			p1 = fmt.Sprintf("%d/%d", row.Phase1Words, row.Pred.Phase1Words)
			p2 = fmt.Sprintf("%d/%d", row.Phase2Words, row.Pred.Phase2Words)
		}
		verdict := "ok"
		if !row.ExactOK {
			verdict = "EXACT-MISMATCH"
		} else if !row.WithinBand {
			verdict = "OUT-OF-BAND"
		}
		roundsPred, unitsBound := row.Pred.Rounds, row.Pred.MaxUnitsBound
		if row.RoundsBound > 0 {
			roundsPred, unitsBound = row.RoundsBound, 3*row.RoundsBound
		}
		tab.AddRow(row.Engine, row.N, row.W,
			fmt.Sprintf("%d/%d", row.Rounds, roundsPred), p1, p2,
			fmt.Sprintf("%d/%d", row.MaxUnits, unitsBound),
			row.LatencyNS/1e3, row.LatPredictedNS/1e3, row.LatBandNS/1e3, verdict)
	}
	var b strings.Builder
	b.WriteString(tab.Markdown())
	b.WriteString("\nFitted models:\n")
	names := make([]string, 0, len(r.Models))
	for name := range r.Models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "  %s\n", r.Models[name])
	}
	return b.String()
}

// Ok reports whether every row's theorem-exact quantities matched and
// every latency landed inside its band.
func (r *SweepResult) Ok() bool {
	for _, row := range r.Rows {
		if !row.ExactOK || !row.WithinBand {
			return false
		}
	}
	return true
}

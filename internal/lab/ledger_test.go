package lab

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testStamp() Stamp {
	return Stamp{
		Time:   time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		GitSHA: "abc1234",
		Machine: Machine{Goos: "linux", Goarch: "amd64", CPU: "TestCPU",
			NumCPU: 8, Host: "host1", Go: "go1.22"},
		Source: "cstlab",
		Label:  "unit test",
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	st := testStamp()
	batch1 := []Entry{
		st.Apply(Entry{Bench: "lab/padr/chain/N=64/w=4/rounds", Unit: "rounds",
			Value: 4, Predicted: 4, Exact: true}),
		st.Apply(Entry{Bench: "lab/padr/chain/N=64/w=4/latency", Unit: "ns/op",
			Value: 52000, Samples: 5, Predicted: 50000}),
	}
	if err := Append(path, batch1); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, []Entry{st.Apply(Entry{Bench: "b2", Unit: "ns/op", Value: 1})}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("read %d entries, want 3", len(got))
	}
	if got[0] != batch1[0] || got[1] != batch1[1] {
		t.Errorf("round trip mismatch:\n%+v\n%+v", got[0], batch1[0])
	}
	if got[0].Schema != SchemaVersion || got[0].Time != "2026-08-08T12:00:00Z" || got[0].GitSHA != "abc1234" {
		t.Errorf("stamp not applied: %+v", got[0])
	}
}

func TestLedgerMissingFileIsEmpty(t *testing.T) {
	got, err := ReadLedger(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || got != nil {
		t.Fatalf("missing ledger: entries=%v err=%v", got, err)
	}
}

func TestLedgerRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadEntries(strings.NewReader(`{"schema":"other/v9","bench":"x"}`)); err == nil {
		t.Error("foreign schema must be rejected")
	}
	if _, err := ReadEntries(strings.NewReader("{not json")); err == nil {
		t.Error("malformed line must be rejected")
	}
	// Blank lines are fine; future cst-lab minor versions are accepted.
	in := `
{"schema":"cst-lab/v2","source":"x","machine":{"goos":"linux","goarch":"amd64","num_cpu":1},"bench":"b","unit":"ns/op","value":1,"time":"t"}
`
	got, err := ReadEntries(strings.NewReader(in))
	if err != nil || len(got) != 1 {
		t.Fatalf("forward-compatible read: %v %v", got, err)
	}
}

// TestLedgerSchemaGolden pins the wire format: renaming or dropping a
// field breaks every committed BENCH_ledger.jsonl, so this test must only
// ever change alongside a schema version bump.
func TestLedgerSchemaGolden(t *testing.T) {
	e := testStamp().Apply(Entry{Bench: "lab/padr/chain/N=64/w=4/rounds",
		Unit: "rounds", Value: 4, Samples: 5, Predicted: 4, Exact: true})
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"schema":"cst-lab/v1","time":"2026-08-08T12:00:00Z","git_sha":"abc1234",` +
		`"source":"cstlab","label":"unit test",` +
		`"machine":{"goos":"linux","goarch":"amd64","cpu":"TestCPU","num_cpu":8,"host":"host1","go":"go1.22"},` +
		`"bench":"lab/padr/chain/N=64/w=4/rounds","unit":"rounds","value":4,"samples":5,"predicted":4,"exact":true}`
	if string(b) != want {
		t.Errorf("schema drift:\n got %s\nwant %s", b, want)
	}
}

func TestMachineFingerprint(t *testing.T) {
	m := Machine{Goos: "linux", Goarch: "amd64", CPU: "X", NumCPU: 4, Host: "h1"}
	same := m
	same.Host = "h2" // hostname must not split the series
	if m.Fingerprint() != same.Fingerprint() {
		t.Error("hostname must not affect the fingerprint")
	}
	diff := m
	diff.NumCPU = 8
	if m.Fingerprint() == diff.Fingerprint() {
		t.Error("core count must affect the fingerprint")
	}
	local := LocalMachine()
	if local.Goos == "" || local.Goarch == "" || local.NumCPU == 0 || local.Go == "" {
		t.Errorf("LocalMachine incomplete: %+v", local)
	}
}

func TestNewStampInjectsProvenance(t *testing.T) {
	t.Setenv("CST_GIT_SHA", "deadbee")
	st := NewStamp("cstlab", "l")
	if st.GitSHA != "deadbee" {
		t.Errorf("CST_GIT_SHA override ignored: %q", st.GitSHA)
	}
	if time.Since(st.Time) > time.Minute || st.Time.Location() != time.UTC {
		t.Errorf("stamp time: %v", st.Time)
	}
	e := st.Apply(Entry{Bench: "b", Unit: "ns/op", Value: 1, Label: "own"})
	if e.Label != "own" {
		t.Error("entry's own label must win")
	}
	if e.Schema != SchemaVersion || e.Source != "cstlab" {
		t.Errorf("apply: %+v", e)
	}
}

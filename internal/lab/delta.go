package lab

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cst/internal/comm"
	"cst/internal/padr"
	"cst/internal/stats"
	"cst/internal/topology"
)

// The delta twin measures the incremental scheduler against its own cost
// model: at overlap ratio r, each delta mutates k = (1−r)·active slots of
// a sparse session set, and the incremental apply should cost O(k·log₂N)
// — versus the O(N) a from-scratch Reset+RunRounds pays regardless of k.
// The sweep drives both paths over the same seeded mutation stream, so
// besides latency it also pins correctness: the post-delta round count
// must equal the from-scratch reference bit for bit.

// DeltaSweepConfig describes an overlap-ratio sweep of the incremental
// scheduler.
type DeltaSweepConfig struct {
	// N is the tree's leaf count; Active the number of occupied 4-leaf
	// slots in the sparse session set (Active <= N/4). The sparse shape is
	// deliberate: it is the regime where dirty root paths are disjoint and
	// the O(|delta|·log N) claim is cleanly testable.
	N, Active int
	// Overlaps are the set-overlap ratios to sweep (e.g. 0.5, 0.75, 0.9);
	// ratio r mutates k = round((1−r)·Active) slots per delta, at least 1.
	Overlaps []float64
	// Phases is how many deltas chain per overlap point; Reps how many
	// timed laps over that chain aggregate into one measurement (median).
	// <= 0 selects 8 and 5.
	Phases, Reps int
	// Seed drives the mutation stream.
	Seed int64
	// GateOverlap and GateRatio define the speedup gate: overlap points at
	// or above GateOverlap must have apply/scratch <= GateRatio. Zero
	// selects 0.9 and 0.5 (the "2x faster at 90% overlap" claim).
	GateOverlap, GateRatio float64
}

func (c DeltaSweepConfig) withDefaults() DeltaSweepConfig {
	if c.N <= 0 {
		c.N = 1024
	}
	if c.Active <= 0 {
		c.Active = 64
	}
	if len(c.Overlaps) == 0 {
		c.Overlaps = []float64{0.5, 0.75, 0.9}
	}
	if c.Phases <= 0 {
		c.Phases = 8
	}
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.GateOverlap == 0 {
		c.GateOverlap = 0.9
	}
	if c.GateRatio == 0 {
		c.GateRatio = 0.5
	}
	return c
}

// DeltaRow is one overlap point's measured-vs-predicted comparison.
type DeltaRow struct {
	N, Active int
	Overlap   float64
	// K is |delta|: slots mutated per apply (each is one remove + one add).
	K int
	// Rounds is the schedule length after the final delta of the chain;
	// ScratchRounds the from-scratch reference on the same set. They must
	// be equal — the differential invariant, theorem-exact in the ledger.
	Rounds, ScratchRounds int
	// ApplyNS and ScratchNS are median per-delta wall-clock costs of the
	// incremental and from-scratch paths over the same mutation stream;
	// Ratio is ApplyNS/ScratchNS. Samples hold every rep.
	ApplyNS, ScratchNS float64
	Ratio              float64
	ApplySamples       []float64
	ScratchSamples     []float64
	// Gated marks the row as subject to the GateRatio speedup bound.
	Gated bool
	// LatPredictedNS and LatBandNS come from the fitted |delta|·log₂N
	// model; WithinBand reports |ApplyNS − predicted| <= band.
	LatPredictedNS, LatBandNS float64
	WithinBand                bool
}

// DeltaSweepResult is a completed overlap sweep plus the fitted apply-cost
// model.
type DeltaSweepResult struct {
	Config DeltaSweepConfig
	Rows   []DeltaRow
	Model  *LatencyModel
}

// deltaStream is a seeded chain of slot mutations over a sparse set.
type deltaStream struct {
	start *comm.Set
	dels  []padr.Delta
	sets  []*comm.Set // canonical set after each delta
}

// buildDeltaStream mirrors the padr benchmark generator: Active occupied
// slots of 4 leaves each, a variant pair per slot, and per phase k
// distinct slots rotated to a different variant (remove old, add new).
func buildDeltaStream(n, active, k, phases int, seed int64) (*deltaStream, error) {
	slots := n / 4
	if active > slots {
		return nil, fmt.Errorf("lab: %d active slots with only %d available at N=%d", active, slots, n)
	}
	step := slots / active
	variants := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}, {1, 3}}
	cur := make([]int, active)
	base := func(i int) int { return 4 * i * step }
	setOf := func() *comm.Set {
		s := &comm.Set{N: n}
		for i := 0; i < active; i++ {
			v := variants[cur[i]]
			s.Comms = append(s.Comms, comm.Comm{Src: base(i) + v[0], Dst: base(i) + v[1]})
		}
		return s
	}
	st := &deltaStream{start: setOf()}
	rng := rand.New(rand.NewSource(seed))
	for p := 0; p < phases; p++ {
		var d padr.Delta
		// Distinct slots per delta: removes run before adds, so mutating
		// one slot twice would remove a not-yet-added variant.
		for _, i := range rng.Perm(active)[:k] {
			old := variants[cur[i]]
			cur[i] = (cur[i] + 1 + rng.Intn(len(variants)-1)) % len(variants)
			next := variants[cur[i]]
			d.Remove = append(d.Remove, comm.Comm{Src: base(i) + old[0], Dst: base(i) + old[1]})
			d.Add = append(d.Add, comm.Comm{Src: base(i) + next[0], Dst: base(i) + next[1]})
		}
		st.dels = append(st.dels, d)
		st.sets = append(st.sets, setOf())
	}
	return st, nil
}

// RunDeltaSweep measures every overlap point, fits the apply-cost model
// over the sweep, and scores measured vs predicted.
func RunDeltaSweep(cfg DeltaSweepConfig) (*DeltaSweepResult, error) {
	cfg = cfg.withDefaults()
	tree, err := topology.New(cfg.N)
	if err != nil {
		return nil, err
	}
	res := &DeltaSweepResult{Config: cfg}
	var ms []Measurement
	for _, ov := range cfg.Overlaps {
		k := int(float64(cfg.Active)*(1-ov) + 0.5)
		if k < 1 {
			k = 1
		}
		row, err := measureDelta(tree, cfg, ov, k)
		if err != nil {
			return nil, fmt.Errorf("lab: delta overlap=%.2f: %w", ov, err)
		}
		res.Rows = append(res.Rows, *row)
		ms = append(ms, Measurement{Engine: EngineDelta, Workload: "sparse",
			N: cfg.N, W: row.Rounds, M: k, LatencyNS: row.ApplyNS})
	}
	// The model needs at least as many points as coefficients (2); a
	// single-point sweep still measures, it just cannot band latency.
	if len(ms) >= 2 {
		model, err := FitLatency(EngineDelta, ms)
		if err != nil {
			return nil, err
		}
		res.Model = model
		for i := range res.Rows {
			row := &res.Rows[i]
			row.LatPredictedNS = model.PredictNS(row.N, row.Rounds, row.K)
			row.LatBandNS = model.BandNS(row.LatPredictedNS)
			row.WithinBand = abs(row.ApplyNS-row.LatPredictedNS) <= row.LatBandNS
		}
	} else {
		for i := range res.Rows {
			res.Rows[i].WithinBand = true
		}
	}
	return res, nil
}

// measureDelta times one overlap point: Reps laps of the incremental
// chain (re-anchored off the clock between laps) against Reps laps of
// from-scratch runs over the same post-delta sets.
func measureDelta(tree *topology.Tree, cfg DeltaSweepConfig, ov float64, k int) (*DeltaRow, error) {
	st, err := buildDeltaStream(cfg.N, cfg.Active, k, cfg.Phases, cfg.Seed)
	if err != nil {
		return nil, err
	}
	row := &DeltaRow{N: cfg.N, Active: cfg.Active, Overlap: ov, K: k,
		Gated: ov >= cfg.GateOverlap}

	eng, err := padr.New(tree, st.start.Clone())
	if err != nil {
		return nil, err
	}
	reanchor := func() error {
		if err := eng.Reset(st.start.Clone()); err != nil {
			return err
		}
		_, err := eng.RunRounds()
		return err
	}
	if _, err := eng.RunRounds(); err != nil {
		return nil, err
	}
	// One warm lap so arena growth happens off the clock.
	for _, d := range st.dels {
		if _, err := eng.ApplyRounds(d); err != nil {
			return nil, err
		}
	}
	for rep := 0; rep < cfg.Reps; rep++ {
		if err := reanchor(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		for _, d := range st.dels {
			rounds, err := eng.ApplyRounds(d)
			if err != nil {
				return nil, err
			}
			row.Rounds = rounds
		}
		lap := float64(time.Since(t0).Nanoseconds()) / float64(len(st.dels))
		row.ApplySamples = append(row.ApplySamples, lap)
	}

	// From-scratch baseline: Reset+RunRounds on each post-delta set, on
	// its own engine so no incremental state can leak in.
	scratch, err := padr.New(tree, st.start.Clone())
	if err != nil {
		return nil, err
	}
	for rep := 0; rep < cfg.Reps; rep++ {
		t0 := time.Now()
		for _, s := range st.sets {
			if err := scratch.Reset(s.Clone()); err != nil {
				return nil, err
			}
			rounds, err := scratch.RunRounds()
			if err != nil {
				return nil, err
			}
			row.ScratchRounds = rounds
		}
		lap := float64(time.Since(t0).Nanoseconds()) / float64(len(st.sets))
		row.ScratchSamples = append(row.ScratchSamples, lap)
	}

	row.ApplyNS = stats.Median(row.ApplySamples)
	row.ScratchNS = stats.Median(row.ScratchSamples)
	if row.ScratchNS > 0 {
		row.Ratio = row.ApplyNS / row.ScratchNS
	}
	return row, nil
}

// deltaBenchName is the ledger series key for one overlap point's metric.
func deltaBenchName(n, active int, ov float64, metric string) string {
	return fmt.Sprintf("lab/delta/sparse/N=%d/a=%d/ov=%.0f/%s", n, active, 100*ov, metric)
}

// Entries converts the sweep into ledger entries: theorem-exact rounds
// (incremental must equal from-scratch), banded apply latency, trended
// scratch latency, and — on gated points — the apply/scratch speedup
// bound. The caller stamps provenance via Stamp.Apply.
func (r *DeltaSweepResult) Entries() []Entry {
	var out []Entry
	for _, row := range r.Rows {
		name := func(metric string) string {
			return deltaBenchName(row.N, row.Active, row.Overlap, metric)
		}
		out = append(out, Entry{Bench: name("rounds"), Unit: "rounds",
			Value: float64(row.Rounds), Predicted: float64(row.ScratchRounds), Exact: true})
		apply := Entry{Bench: name("apply_latency"), Unit: "ns/op",
			Value: row.ApplyNS, Samples: len(row.ApplySamples)}
		if r.Model != nil {
			apply.Predicted = row.LatPredictedNS
		}
		out = append(out, apply)
		out = append(out, Entry{Bench: name("scratch_latency"), Unit: "ns/op",
			Value: row.ScratchNS, Samples: len(row.ScratchSamples)})
		ratio := Entry{Bench: name("apply_vs_scratch_ratio"), Unit: "ratio",
			Value: row.Ratio}
		if row.Gated {
			ratio.Predicted = r.Config.GateRatio
			ratio.Bound = true
		}
		out = append(out, ratio)
	}
	return out
}

// Table renders the sweep as markdown.
func (r *DeltaSweepResult) Table() string {
	tab := stats.NewTable("N", "active", "overlap", "|delta|", "rounds inc/scr",
		"apply µs", "scratch µs", "ratio", "predicted µs", "verdict")
	for _, row := range r.Rows {
		verdict := "ok"
		switch {
		case row.Rounds != row.ScratchRounds:
			verdict = "EXACT-MISMATCH"
		case row.Gated && row.Ratio > r.Config.GateRatio:
			verdict = "GATE-EXCEEDED"
		case !row.WithinBand:
			verdict = "OUT-OF-BAND"
		}
		tab.AddRow(row.N, row.Active, fmt.Sprintf("%.0f%%", 100*row.Overlap), row.K,
			fmt.Sprintf("%d/%d", row.Rounds, row.ScratchRounds),
			row.ApplyNS/1e3, row.ScratchNS/1e3,
			fmt.Sprintf("%.2f", row.Ratio), row.LatPredictedNS/1e3, verdict)
	}
	var b strings.Builder
	b.WriteString(tab.Markdown())
	if r.Model != nil {
		fmt.Fprintf(&b, "\nFitted model:\n  %s\n", r.Model)
	}
	return b.String()
}

// Ok reports whether every row's rounds matched the from-scratch
// reference, every gated point met the speedup bound, and every apply
// latency landed inside its band.
func (r *DeltaSweepResult) Ok() bool {
	for _, row := range r.Rows {
		if row.Rounds != row.ScratchRounds || !row.WithinBand {
			return false
		}
		if row.Gated && row.Ratio > r.Config.GateRatio {
			return false
		}
	}
	return true
}

package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net"
	"testing"
	"time"
)

// TestRequestFrameGolden pins the canonical request encoding byte for
// byte, the same way the ctrl word and Prometheus exposition goldens pin
// their formats: any drift is a protocol break, not a refactor.
func TestRequestFrameGolden(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want []byte
	}{
		{
			name: "minimal",
			req:  Request{ID: 1, Src: 3, Dst: 12},
			// length=5 | type | id=1 | src=3 | dst=12 | deadline=0
			want: []byte{0x05, 0x01, 0x01, 0x03, 0x0c, 0x00},
		},
		{
			name: "multibyte varints",
			req:  Request{ID: 300, Src: 128, Dst: 129, DeadlineMS: 250},
			// length=9 | type | id=300 (0xac 0x02) | src=128 (0x80 0x01)
			// | dst=129 (0x81 0x01) | deadline=250 (0xfa 0x01)
			want: []byte{0x09, 0x01, 0xac, 0x02, 0x80, 0x01, 0x81, 0x01, 0xfa, 0x01},
		},
		{
			name: "zero everything",
			req:  Request{},
			want: []byte{0x05, 0x01, 0x00, 0x00, 0x00, 0x00},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := AppendRequest(nil, &tc.req)
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("AppendRequest(%+v) = % x, want % x", tc.req, got, tc.want)
			}
			typ, body, n, err := DecodeFrame(got)
			if err != nil {
				t.Fatalf("DecodeFrame: %v", err)
			}
			if typ != TypeRequest || n != len(got) {
				t.Fatalf("DecodeFrame: typ=%#x n=%d, want typ=%#x n=%d", typ, n, TypeRequest, len(got))
			}
			var back Request
			if err := ParseRequest(body, &back); err != nil {
				t.Fatalf("ParseRequest: %v", err)
			}
			if back != tc.req {
				t.Fatalf("roundtrip: got %+v, want %+v", back, tc.req)
			}
		})
	}
}

// TestResponseFrameGolden pins the canonical response encoding.
func TestResponseFrameGolden(t *testing.T) {
	cases := []struct {
		name string
		resp Response
		want []byte
	}{
		{
			name: "scheduled",
			resp: Response{ID: 1, Status: 200, Shard: 0, Arrival: 1,
				Dispatched: 2, Finished: 6, LatencyRounds: 5},
			// length=10 | type | id=1 | status=200 (0xc8 0x01) |
			// shard=0 | arrival=1 (zigzag 0x02) | dispatched=2 (0x04) |
			// finished=6 (0x0c) | latency=5 (0x0a) | errlen=0
			want: []byte{0x0a, 0x02, 0x01, 0xc8, 0x01, 0x00, 0x02, 0x04, 0x0c, 0x0a, 0x00},
		},
		{
			name: "rejected with error text",
			resp: Response{ID: 7, Status: 429, Shard: -1, Err: "queue full"},
			// length=20 | type | id=7 | status=429 (0xad 0x03) |
			// shard=-1 (zigzag 0x01) | arrival..latency=0 | errlen=10 | "queue full"
			want: append([]byte{0x14, 0x02, 0x07, 0xad, 0x03, 0x01, 0x00, 0x00, 0x00, 0x00, 0x0a},
				[]byte("queue full")...),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := AppendResponse(nil, &tc.resp)
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("AppendResponse(%+v) = % x, want % x", tc.resp, got, tc.want)
			}
			typ, body, n, err := DecodeFrame(got)
			if err != nil {
				t.Fatalf("DecodeFrame: %v", err)
			}
			if typ != TypeResponse || n != len(got) {
				t.Fatalf("DecodeFrame: typ=%#x n=%d, want typ=%#x n=%d", typ, n, TypeResponse, len(got))
			}
			var back Response
			if err := ParseResponse(body, &back); err != nil {
				t.Fatalf("ParseResponse: %v", err)
			}
			if back != tc.resp {
				t.Fatalf("roundtrip: got %+v, want %+v", back, tc.resp)
			}
		})
	}
}

// TestSetRequestFrameGolden pins the v2 set-request encoding.
func TestSetRequestFrameGolden(t *testing.T) {
	cases := []struct {
		name string
		req  SetRequest
		want []byte
	}{
		{
			name: "crossing pair of pairs",
			req:  SetRequest{ID: 1, N: 16, Pairs: [][2]int{{0, 8}, {9, 1}}},
			// length=8 | type | id=1 | n=16 | count=2 | 0 8 | 9 1
			want: []byte{0x08, 0x03, 0x01, 0x10, 0x02, 0x00, 0x08, 0x09, 0x01},
		},
		{
			name: "empty set",
			req:  SetRequest{ID: 2, N: 4},
			// length=4 | type | id=2 | n=4 | count=0
			want: []byte{0x04, 0x03, 0x02, 0x04, 0x00},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := AppendSetRequest(nil, &tc.req)
			if err != nil {
				t.Fatalf("AppendSetRequest: %v", err)
			}
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("AppendSetRequest(%+v) = % x, want % x", tc.req, got, tc.want)
			}
			typ, body, n, err := DecodeFrame(got)
			if err != nil || typ != TypeSetRequest || n != len(got) {
				t.Fatalf("DecodeFrame: typ=%#x n=%d err=%v", typ, n, err)
			}
			var back SetRequest
			if err := ParseSetRequest(body, &back); err != nil {
				t.Fatalf("ParseSetRequest: %v", err)
			}
			if back.ID != tc.req.ID || back.N != tc.req.N || len(back.Pairs) != len(tc.req.Pairs) {
				t.Fatalf("roundtrip: got %+v, want %+v", back, tc.req)
			}
			for i := range back.Pairs {
				if back.Pairs[i] != tc.req.Pairs[i] {
					t.Fatalf("pair %d: got %v, want %v", i, back.Pairs[i], tc.req.Pairs[i])
				}
			}
		})
	}

	// An oversized set is refused at encode time, before any frame bytes.
	big := &SetRequest{ID: 1, N: 1 << 20, Pairs: make([][2]int, MaxFrameBytes)}
	for i := range big.Pairs {
		big.Pairs[i] = [2]int{i, i + 1}
	}
	if _, err := AppendSetRequest(nil, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized set: %v, want ErrFrameTooLarge", err)
	}
}

// TestSetResponseFrameGolden pins the v2 set-response encoding.
func TestSetResponseFrameGolden(t *testing.T) {
	cases := []struct {
		name string
		resp SetResponse
		want []byte
	}{
		{
			name: "planned",
			resp: SetResponse{ID: 3, Status: 200, Rounds: 4, Bound: 5, Width: 2,
				Batches: 2, Residual: 1, Units: 33, Strategy: StrategyPeel},
			// length=12 | type | id=3 | status=200 (0xc8 0x01) | rounds=4 |
			// bound=5 | width=2 | batches=2 | residual=1 | units=33 |
			// strategy=1 | errlen=0
			want: []byte{0x0c, 0x04, 0x03, 0xc8, 0x01, 0x04, 0x05, 0x02, 0x02, 0x01, 0x21, 0x01, 0x00},
		},
		{
			name: "invalid set",
			resp: SetResponse{ID: 9, Status: 400, Err: "bad set"},
			// length=19 | type | id=9 | status=400 (0x90 0x03) | five zero
			// count fields | units=0 | strategy=0 | errlen=7 | "bad set"
			want: append([]byte{0x13, 0x04, 0x09, 0x90, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x07},
				[]byte("bad set")...),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := AppendSetResponse(nil, &tc.resp)
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("AppendSetResponse(%+v) = % x, want % x", tc.resp, got, tc.want)
			}
			typ, body, n, err := DecodeFrame(got)
			if err != nil || typ != TypeSetResponse || n != len(got) {
				t.Fatalf("DecodeFrame: typ=%#x n=%d err=%v", typ, n, err)
			}
			var back SetResponse
			if err := ParseSetResponse(body, &back); err != nil {
				t.Fatalf("ParseSetResponse: %v", err)
			}
			if back != tc.resp {
				t.Fatalf("roundtrip: got %+v, want %+v", back, tc.resp)
			}
		})
	}

	// A junk strategy code is malformed, not silently accepted.
	frame := AppendSetResponse(nil, &SetResponse{ID: 1, Status: 200})
	_, body, _, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), body...)
	bad[len(bad)-2] = 0x07 // strategy byte sits before errlen=0
	var resp SetResponse
	if err := ParseSetResponse(bad, &resp); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("junk strategy: %v, want ErrBadFrame", err)
	}
}

// TestSendSetNeedsV2 pins the client-side version gate: a session that
// negotiated v1 must refuse to emit set frames rather than poison the
// stream for the old server.
func TestSendSetNeedsV2(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	go func() {
		hello := make([]byte, HandshakeBytes)
		if _, err := io.ReadFull(srv, hello); err != nil {
			return
		}
		srv.Write(AppendHello(nil, 1)) // a v1-only server
	}()
	c, err := NewClientConn(cli, time.Second)
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	defer c.Close()
	if c.ProtocolVersion() != 1 {
		t.Fatalf("negotiated v%d, want v1", c.ProtocolVersion())
	}
	err = c.SendSet(&SetRequest{ID: 1, N: 4, Pairs: [][2]int{{0, 2}}})
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("SendSet on v1 session: %v, want ErrVersion", err)
	}
}

// TestHandshakeGolden pins the handshake bytes and Negotiate's min rule.
func TestHandshakeGolden(t *testing.T) {
	hello := AppendHello(nil, Version)
	want := []byte{'C', 'S', 'T', 'W', 0x04}
	if !bytes.Equal(hello, want) {
		t.Fatalf("AppendHello = % x, want % x", hello, want)
	}
	v, err := ParseHello(hello)
	if err != nil || v != Version {
		t.Fatalf("ParseHello = (%d, %v), want (%d, nil)", v, err, Version)
	}

	if _, err := ParseHello([]byte("CSTX\x01")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v, want ErrBadMagic", err)
	}
	if _, err := ParseHello([]byte("CST")); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short handshake: got %v, want ErrTruncated", err)
	}
	if _, err := ParseHello([]byte("CSTW\x00")); !errors.Is(err, ErrVersion) {
		t.Fatalf("version 0: got %v, want ErrVersion", err)
	}

	// The newer side yields.
	if got := Negotiate(9, Version); got != Version {
		t.Fatalf("Negotiate(9, %d) = %d, want %d", Version, got, Version)
	}
	if got := Negotiate(1, 9); got != 1 {
		t.Fatalf("Negotiate(1, 9) = %d, want 1", got)
	}
}

// TestVersionNegotiationOverConn drives the client handshake against a
// scripted server: a client offering the current version accepts a v1
// answer, and rejects a server claiming a future version.
func TestVersionNegotiationOverConn(t *testing.T) {
	t.Run("server yields to min", func(t *testing.T) {
		cli, srv := net.Pipe()
		defer srv.Close()
		go func() {
			hello := make([]byte, HandshakeBytes)
			if _, err := io.ReadFull(srv, hello); err != nil {
				return
			}
			offered, err := ParseHello(hello)
			if err != nil {
				return
			}
			srv.Write(AppendHello(nil, Negotiate(offered, Version)))
		}()
		c, err := NewClientConn(cli, time.Second)
		if err != nil {
			t.Fatalf("NewClientConn: %v", err)
		}
		defer c.Close()
		if c.ProtocolVersion() != Version {
			t.Fatalf("negotiated v%d, want v%d", c.ProtocolVersion(), Version)
		}
	})

	t.Run("future server version rejected", func(t *testing.T) {
		cli, srv := net.Pipe()
		defer srv.Close()
		go func() {
			hello := make([]byte, HandshakeBytes)
			if _, err := io.ReadFull(srv, hello); err != nil {
				return
			}
			srv.Write(AppendHello(nil, 9))
		}()
		if _, err := NewClientConn(cli, time.Second); !errors.Is(err, ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})
}

// TestDecodeFrameErrors exercises every typed failure path.
func TestDecodeFrameErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty input", nil, ErrTruncated},
		{"oversized length claim", []byte{0xff, 0xff, 0x01}, ErrFrameTooLarge}, // claims 32767 bytes
		{"zero-length payload", []byte{0x00}, ErrBadFrame},
		{"truncated payload", []byte{0x05, 0x01, 0x01}, ErrTruncated},
		{"unknown type", []byte{0x01, 0x7f}, ErrUnknownType},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := DecodeFrame(tc.in)
			if !errors.Is(err, tc.want) {
				t.Fatalf("DecodeFrame(% x) err = %v, want %v", tc.in, err, tc.want)
			}
		})
	}
}

// TestParseErrors exercises body-level failure paths.
func TestParseErrors(t *testing.T) {
	var req Request
	if err := ParseRequest([]byte{0x01}, &req); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short request body: %v, want ErrTruncated", err)
	}
	if err := ParseRequest([]byte{0x01, 0x02, 0x03, 0x00, 0xff}, &req); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing bytes: %v, want ErrBadFrame", err)
	}
	// src beyond int32 (negative Src encoded as huge uvarint lands here).
	huge := AppendRequest(nil, &Request{Src: -1})
	_, body, _, err := DecodeFrame(huge)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if err := ParseRequest(body, &req); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("out-of-range src: %v, want ErrBadFrame", err)
	}
	// Overlong varint (10 bytes of continuation) is malformed, not truncated.
	junk := bytes.Repeat([]byte{0xff}, 11)
	if err := ParseRequest(junk, &req); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overflowing varint: %v, want ErrBadFrame", err)
	}

	var resp Response
	if err := ParseResponse([]byte{0x01, 0xc8}, &resp); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short response body: %v, want ErrTruncated", err)
	}
	// errlen that disagrees with the remaining bytes.
	full := AppendResponse(nil, &Response{ID: 1, Status: 200, Err: "xy"})
	_, body, _, err = DecodeFrame(full)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if err := ParseResponse(body[:len(body)-1], &resp); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("errlen mismatch: %v, want ErrBadFrame", err)
	}
}

// TestDeadlineConversion pins the ms → duration mapping and the range
// guard on absurd deadlines.
func TestDeadlineConversion(t *testing.T) {
	r := Request{DeadlineMS: 250}
	if r.Deadline() != 250*time.Millisecond {
		t.Fatalf("Deadline() = %v, want 250ms", r.Deadline())
	}
	overflow := AppendRequest(nil, &Request{DeadlineMS: math.MaxInt64})
	_, body, _, err := DecodeFrame(overflow)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	var back Request
	if err := ParseRequest(body, &back); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overflow deadline: %v, want ErrBadFrame", err)
	}
}

// TestReaderStream feeds several frames through a Reader, split across
// arbitrary write boundaries, and checks EOF semantics.
func TestReaderStream(t *testing.T) {
	var stream []byte
	reqs := []Request{{ID: 1, Src: 0, Dst: 5}, {ID: 2, Src: 300, Dst: 301, DeadlineMS: 1000}}
	for i := range reqs {
		stream = AppendRequest(stream, &reqs[i])
	}
	stream = AppendResponse(stream, &Response{ID: 1, Status: 200, LatencyRounds: 3})

	r := NewReader(bytes.NewReader(stream))
	for i := range reqs {
		typ, body, err := r.Next()
		if err != nil || typ != TypeRequest {
			t.Fatalf("frame %d: typ=%#x err=%v", i, typ, err)
		}
		var got Request
		if err := ParseRequest(body, &got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != reqs[i] {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, reqs[i])
		}
	}
	typ, body, err := r.Next()
	if err != nil || typ != TypeResponse {
		t.Fatalf("response frame: typ=%#x err=%v", typ, err)
	}
	var resp Response
	if err := ParseResponse(body, &resp); err != nil || resp.Status != 200 {
		t.Fatalf("response: %+v err=%v", resp, err)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("at stream end: %v, want io.EOF", err)
	}

	// A partial trailing frame is an unexpected EOF, not a clean one.
	r.Reset(bytes.NewReader(stream[:len(stream)-2]))
	for i := 0; i < len(reqs); i++ {
		if _, _, err := r.Next(); err != nil {
			t.Fatalf("frame %d after reset: %v", i, err)
		}
	}
	if _, _, err := r.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("partial frame: %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestAppendParseAllocFree pins the encode and decode paths at zero
// allocations once scratch buffers exist — the property the serve hot
// path builds on.
func TestAppendParseAllocFree(t *testing.T) {
	req := Request{ID: 42, Src: 3, Dst: 12, DeadlineMS: 100}
	resp := Response{ID: 42, Status: 200, Shard: 1, Arrival: 2, Dispatched: 3,
		Finished: 9, LatencyRounds: 7}
	buf := make([]byte, 0, 64)

	if n := testing.AllocsPerRun(100, func() {
		buf = AppendRequest(buf[:0], &req)
		buf = AppendResponse(buf[:0], &resp)
	}); n != 0 {
		t.Fatalf("append paths allocate %v/op, want 0", n)
	}

	frame := AppendRequest(nil, &req)
	rframe := AppendResponse(nil, &resp)
	var gotReq Request
	var gotResp Response
	if n := testing.AllocsPerRun(100, func() {
		_, body, _, err := DecodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		if err := ParseRequest(body, &gotReq); err != nil {
			t.Fatal(err)
		}
		_, body, _, err = DecodeFrame(rframe)
		if err != nil {
			t.Fatal(err)
		}
		if err := ParseResponse(body, &gotResp); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("decode paths allocate %v/op, want 0", n)
	}
}

// TestErrTruncationCap pins that an oversized response error string is
// truncated at encode time rather than producing an over-budget frame.
func TestErrTruncationCap(t *testing.T) {
	long := string(bytes.Repeat([]byte{'e'}, MaxFrameBytes))
	frame := AppendResponse(nil, &Response{ID: 1, Status: 500, Err: long})
	typ, body, _, err := DecodeFrame(frame)
	if err != nil || typ != TypeResponse {
		t.Fatalf("DecodeFrame: typ=%#x err=%v", typ, err)
	}
	var resp Response
	if err := ParseResponse(body, &resp); err != nil {
		t.Fatalf("ParseResponse: %v", err)
	}
	if len(resp.Err) != MaxFrameBytes/2 {
		t.Fatalf("err carried %d bytes, want truncation to %d", len(resp.Err), MaxFrameBytes/2)
	}
}

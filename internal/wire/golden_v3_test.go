package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// TestRequestFrameGoldenV3 pins the v3 request layout byte for byte: the
// v1/v2 fields followed by the trace block (trace, span, flags). An
// untraced request carries three explicit zero bytes — the block is fixed
// per version, never optional.
func TestRequestFrameGoldenV3(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want []byte
	}{
		{
			name: "untraced zero block",
			req:  Request{ID: 1, Src: 3, Dst: 12},
			// length=8 | type | id=1 | src=3 | dst=12 | deadline=0 |
			// trace=0 | span=0 | flags=0
			want: []byte{0x08, 0x01, 0x01, 0x03, 0x0c, 0x00, 0x00, 0x00, 0x00},
		},
		{
			name: "sampled trace context",
			req:  Request{ID: 1, Src: 3, Dst: 12, Trace: 128, Span: 1, Flags: FlagSampled},
			// length=9 | type | id=1 | src=3 | dst=12 | deadline=0 |
			// trace=128 (0x80 0x01) | span=1 | flags=1
			want: []byte{0x09, 0x01, 0x01, 0x03, 0x0c, 0x00, 0x80, 0x01, 0x01, 0x01},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := AppendRequestV(nil, &tc.req, VersionTrace)
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("AppendRequestV(%+v, v3) = % x, want % x", tc.req, got, tc.want)
			}
			typ, body, n, err := DecodeFrame(got)
			if err != nil || typ != TypeRequest || n != len(got) {
				t.Fatalf("DecodeFrame: typ=%#x n=%d err=%v", typ, n, err)
			}
			var back Request
			if err := ParseRequestV(body, &back, VersionTrace); err != nil {
				t.Fatalf("ParseRequestV: %v", err)
			}
			if back != tc.req {
				t.Fatalf("roundtrip: got %+v, want %+v", back, tc.req)
			}
			// A v2 parser must reject the same body: the trace block reads
			// as trailing garbage, never as silent truncation.
			if err := ParseRequestV(body, &back, VersionSets); !errors.Is(err, ErrBadFrame) {
				t.Fatalf("v2 parse of v3 body: %v, want ErrBadFrame", err)
			}
		})
	}
}

// TestResponseFrameGoldenV3 pins the v3 response layout: the trace-id
// uvarint sits between latency_rounds and errlen.
func TestResponseFrameGoldenV3(t *testing.T) {
	resp := Response{ID: 1, Status: 200, Shard: 0, Arrival: 1,
		Dispatched: 2, Finished: 6, LatencyRounds: 5, Trace: 7}
	// length=11 | type | id=1 | status=200 (0xc8 0x01) | shard=0 |
	// arrival=1 (zigzag 0x02) | dispatched=2 (0x04) | finished=6 (0x0c) |
	// latency=5 (0x0a) | trace=7 | errlen=0
	want := []byte{0x0b, 0x02, 0x01, 0xc8, 0x01, 0x00, 0x02, 0x04, 0x0c, 0x0a, 0x07, 0x00}
	got := AppendResponseV(nil, &resp, VersionTrace)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendResponseV(v3) = % x, want % x", got, want)
	}
	_, body, _, err := DecodeFrame(got)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	var back Response
	if err := ParseResponseV(body, &back, VersionTrace); err != nil {
		t.Fatalf("ParseResponseV: %v", err)
	}
	if back != resp {
		t.Fatalf("roundtrip: got %+v, want %+v", back, resp)
	}

	// The same answer on a v2 session is byte-identical to the pre-trace
	// format: the trace id is dropped, not smuggled.
	v2 := AppendResponseV(nil, &resp, VersionSets)
	wantV2 := []byte{0x0a, 0x02, 0x01, 0xc8, 0x01, 0x00, 0x02, 0x04, 0x0c, 0x0a, 0x00}
	if !bytes.Equal(v2, wantV2) {
		t.Fatalf("AppendResponseV(v2) = % x, want % x", v2, wantV2)
	}
}

// TestSetRequestFrameGoldenV3 pins the v3 set-request layout: the trace
// block follows the pair list.
func TestSetRequestFrameGoldenV3(t *testing.T) {
	req := SetRequest{ID: 1, N: 16, Pairs: [][2]int{{0, 8}, {9, 1}},
		Trace: 5, Span: 2, Flags: FlagSampled}
	// length=11 | type | id=1 | n=16 | count=2 | 0 8 | 9 1 | trace=5 |
	// span=2 | flags=1
	want := []byte{0x0b, 0x03, 0x01, 0x10, 0x02, 0x00, 0x08, 0x09, 0x01, 0x05, 0x02, 0x01}
	got, err := AppendSetRequestV(nil, &req, VersionTrace)
	if err != nil {
		t.Fatalf("AppendSetRequestV: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendSetRequestV(v3) = % x, want % x", got, want)
	}
	_, body, _, err := DecodeFrame(got)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	var back SetRequest
	if err := ParseSetRequestV(body, &back, VersionTrace); err != nil {
		t.Fatalf("ParseSetRequestV: %v", err)
	}
	if back.Trace != 5 || back.Span != 2 || back.Flags != FlagSampled {
		t.Fatalf("trace block lost: %+v", back)
	}
	if err := ParseSetRequestV(body, &back, VersionSets); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("v2 parse of v3 set body: %v, want ErrBadFrame", err)
	}
}

// TestSetResponseFrameGoldenV3 pins the v3 set-response layout: the
// trace-id uvarint sits between strategy and errlen.
func TestSetResponseFrameGoldenV3(t *testing.T) {
	resp := SetResponse{ID: 3, Status: 200, Rounds: 4, Bound: 5, Width: 2,
		Batches: 2, Residual: 1, Units: 33, Strategy: StrategyPeel, Trace: 9}
	// length=13 | type | id=3 | status=200 (0xc8 0x01) | rounds=4 |
	// bound=5 | width=2 | batches=2 | residual=1 | units=33 | strategy=1 |
	// trace=9 | errlen=0
	want := []byte{0x0d, 0x04, 0x03, 0xc8, 0x01, 0x04, 0x05, 0x02, 0x02, 0x01, 0x21, 0x01, 0x09, 0x00}
	got := AppendSetResponseV(nil, &resp, VersionTrace)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendSetResponseV(v3) = % x, want % x", got, want)
	}
	_, body, _, err := DecodeFrame(got)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	var back SetResponse
	if err := ParseSetResponseV(body, &back, VersionTrace); err != nil {
		t.Fatalf("ParseSetResponseV: %v", err)
	}
	if back != resp {
		t.Fatalf("roundtrip: got %+v, want %+v", back, resp)
	}
}

// TestVersionNegotiationMatrix drives every client-offer × server-local
// version pair through a live handshake and one pipelined request: the
// session must settle on min(offer, local), frame in exactly that
// version's layout, and carry trace context only at v3×v3.
func TestVersionNegotiationMatrix(t *testing.T) {
	serve := func(conn net.Conn, local uint8) {
		defer conn.Close()
		hello := make([]byte, HandshakeBytes)
		if _, err := io.ReadFull(conn, hello); err != nil {
			return
		}
		offered, err := ParseHello(hello)
		if err != nil {
			return
		}
		session := Negotiate(offered, local)
		if _, err := conn.Write(AppendHello(nil, session)); err != nil {
			return
		}
		r := NewReader(conn)
		var req Request
		var out []byte
		for {
			typ, body, err := r.Next()
			if err != nil || typ != TypeRequest {
				return
			}
			if err := ParseRequestV(body, &req, session); err != nil {
				return
			}
			// Echo the parsed trace id +1 so the client can tell "server
			// saw my context" from "field defaulted to zero".
			resp := Response{ID: req.ID, Status: 200}
			if req.Trace != 0 {
				resp.Trace = req.Trace + 1
			}
			out = AppendResponseV(out[:0], &resp, session)
			if _, err := conn.Write(out); err != nil {
				return
			}
		}
	}

	for _, server := range []uint8{1, 2, 3} {
		for _, client := range []uint8{1, 2, 3} {
			session := client
			if server < client {
				session = server
			}
			cli, srv := net.Pipe()
			go serve(srv, server)
			c, err := NewClientConnVersion(cli, time.Second, client)
			if err != nil {
				t.Fatalf("client v%d × server v%d: handshake: %v", client, server, err)
			}
			if c.ProtocolVersion() != session {
				t.Fatalf("client v%d × server v%d: negotiated v%d, want v%d",
					client, server, c.ProtocolVersion(), session)
			}
			req := Request{ID: 7, Src: 1, Dst: 2, Trace: 0xab, Span: 0x1, Flags: FlagSampled}
			if err := c.Send(&req); err != nil {
				t.Fatalf("v%d×v%d: Send: %v", client, server, err)
			}
			if err := c.Flush(); err != nil {
				t.Fatalf("v%d×v%d: Flush: %v", client, server, err)
			}
			var resp Response
			if err := c.Recv(&resp); err != nil {
				t.Fatalf("v%d×v%d: Recv: %v", client, server, err)
			}
			if resp.ID != 7 || resp.Status != 200 {
				t.Fatalf("v%d×v%d: resp %+v", client, server, resp)
			}
			wantTrace := uint64(0)
			if session >= VersionTrace {
				wantTrace = 0xab + 1
			}
			if resp.Trace != wantTrace {
				t.Fatalf("v%d×v%d: resp.Trace = %#x, want %#x", client, server, resp.Trace, wantTrace)
			}
			c.Close()
		}
	}
}

package wire

import (
	"errors"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder and the two
// body parsers. The contract under fuzz: never panic, never allocate
// proportionally to a hostile length claim, and fail only with the typed
// sentinels so callers can errors.Is their way to a diagnosis. Valid
// frames must survive a decode → re-encode → re-decode round trip with
// identical field values (byte-exactness is only guaranteed for canonical
// encoder output — binary.Uvarint tolerates overlong varints on input).
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add(AppendRequest(nil, &Request{ID: 1, Src: 3, Dst: 12}))
	f.Add(AppendRequest(nil, &Request{ID: 300, Src: 128, Dst: 129, DeadlineMS: 250}))
	f.Add(AppendResponse(nil, &Response{ID: 1, Status: 200, LatencyRounds: 5}))
	f.Add(AppendResponse(nil, &Response{ID: 7, Status: 429, Shard: -1, Err: "queue full"}))
	f.Add([]byte{0x05, 0x01, 0x01, 0x03, 0x0c}) // one byte short
	f.Add([]byte{0x02, 0x7f, 0x00})             // unknown type

	typed := func(err error) bool {
		return errors.Is(err, ErrTruncated) || errors.Is(err, ErrFrameTooLarge) ||
			errors.Is(err, ErrBadFrame) || errors.Is(err, ErrUnknownType)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, n, err := DecodeFrame(data)
		if err != nil {
			if !typed(err) {
				t.Fatalf("DecodeFrame(% x): untyped error %v", data, err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(data))
		}
		switch typ {
		case TypeRequest:
			var req Request
			if perr := ParseRequest(body, &req); perr != nil {
				if !typed(perr) {
					t.Fatalf("ParseRequest: untyped error %v", perr)
				}
				return
			}
			re := AppendRequest(nil, &req)
			_, rbody, _, rerr := DecodeFrame(re)
			var back Request
			if rerr != nil || ParseRequest(rbody, &back) != nil || back != req {
				t.Fatalf("request roundtrip mismatch: % x -> %+v -> % x -> %+v (%v)",
					data[:n], req, re, back, rerr)
			}
		case TypeResponse:
			var resp Response
			if perr := ParseResponse(body, &resp); perr != nil {
				if !typed(perr) {
					t.Fatalf("ParseResponse: untyped error %v", perr)
				}
				return
			}
			re := AppendResponse(nil, &resp)
			_, rbody, _, rerr := DecodeFrame(re)
			var back Response
			if rerr != nil || ParseResponse(rbody, &back) != nil || back != resp {
				t.Fatalf("response roundtrip mismatch: % x -> %+v -> % x -> %+v (%v)",
					data[:n], resp, re, back, rerr)
			}
		default:
			t.Fatalf("DecodeFrame returned unknown type %#x without error", typ)
		}
	})
}

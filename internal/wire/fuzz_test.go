package wire

import (
	"errors"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder and the two
// body parsers. The contract under fuzz: never panic, never allocate
// proportionally to a hostile length claim, and fail only with the typed
// sentinels so callers can errors.Is their way to a diagnosis. Valid
// frames must survive a decode → re-encode → re-decode round trip with
// identical field values (byte-exactness is only guaranteed for canonical
// encoder output — binary.Uvarint tolerates overlong varints on input).
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add(AppendRequest(nil, &Request{ID: 1, Src: 3, Dst: 12}))
	f.Add(AppendRequest(nil, &Request{ID: 300, Src: 128, Dst: 129, DeadlineMS: 250}))
	f.Add(AppendResponse(nil, &Response{ID: 1, Status: 200, LatencyRounds: 5}))
	f.Add(AppendResponse(nil, &Response{ID: 7, Status: 429, Shard: -1, Err: "queue full"}))
	if sr, err := AppendSetRequest(nil, &SetRequest{ID: 2, N: 16, Pairs: [][2]int{{0, 8}, {9, 1}}}); err == nil {
		f.Add(sr)
	}
	f.Add(AppendSetResponse(nil, &SetResponse{ID: 2, Status: 200, Rounds: 3,
		Bound: 4, Width: 2, Batches: 1, Residual: 1, Units: 17, Strategy: StrategyPeel}))
	f.Add(AppendSetResponse(nil, &SetResponse{ID: 5, Status: 400, Err: "bad set"}))
	if dr, err := AppendDeltaRequest(nil, &DeltaRequest{ID: 3, Session: 7, DeadlineMS: 250,
		Remove: [][2]int{{0, 8}}, Add: [][2]int{{0, 2}}, Trace: 0xabc, Span: 1, Flags: 1}); err == nil {
		f.Add(dr)
	}
	f.Add(AppendDeltaResponse(nil, &DeltaResponse{ID: 3, Session: 7, Status: 200,
		Rounds: 2, Width: 2, Size: 5, Fallback: true, Trace: 9}))
	f.Add(AppendDeltaResponse(nil, &DeltaResponse{ID: 4, Session: 1, Status: 400, Err: "bad delta"}))
	f.Add([]byte{0x03, 0x03, 0x01, 0x10, 0xff}) // set request with hostile count claim
	f.Add([]byte{0x05, 0x01, 0x01, 0x03, 0x0c}) // one byte short
	f.Add([]byte{0x02, 0x7f, 0x00})             // unknown type
	// request with overflowing deadline_ms (> MaxInt64 milliseconds)
	f.Add([]byte{0x0e, 0x01, 0x01, 0x00, 0x01,
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	// delta request with hostile nremove claim
	f.Add([]byte{0x09, 0x05, 0x01, 0x01, 0x00, 0x80, 0x80, 0x80, 0x80, 0x08})

	typed := func(err error) bool {
		return errors.Is(err, ErrTruncated) || errors.Is(err, ErrFrameTooLarge) ||
			errors.Is(err, ErrBadFrame) || errors.Is(err, ErrUnknownType)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, body, n, err := DecodeFrame(data)
		if err != nil {
			if !typed(err) {
				t.Fatalf("DecodeFrame(% x): untyped error %v", data, err)
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(data))
		}
		switch typ {
		case TypeRequest:
			var req Request
			if perr := ParseRequest(body, &req); perr != nil {
				if !typed(perr) {
					t.Fatalf("ParseRequest: untyped error %v", perr)
				}
				return
			}
			re := AppendRequest(nil, &req)
			_, rbody, _, rerr := DecodeFrame(re)
			var back Request
			if rerr != nil || ParseRequest(rbody, &back) != nil || back != req {
				t.Fatalf("request roundtrip mismatch: % x -> %+v -> % x -> %+v (%v)",
					data[:n], req, re, back, rerr)
			}
		case TypeResponse:
			var resp Response
			if perr := ParseResponse(body, &resp); perr != nil {
				if !typed(perr) {
					t.Fatalf("ParseResponse: untyped error %v", perr)
				}
				return
			}
			re := AppendResponse(nil, &resp)
			_, rbody, _, rerr := DecodeFrame(re)
			var back Response
			if rerr != nil || ParseResponse(rbody, &back) != nil || back != resp {
				t.Fatalf("response roundtrip mismatch: % x -> %+v -> % x -> %+v (%v)",
					data[:n], resp, re, back, rerr)
			}
		case TypeSetRequest:
			var req SetRequest
			if perr := ParseSetRequest(body, &req); perr != nil {
				if !typed(perr) {
					t.Fatalf("ParseSetRequest: untyped error %v", perr)
				}
				return
			}
			re, aerr := AppendSetRequest(nil, &req)
			if aerr != nil {
				t.Fatalf("re-encode of parsed set request failed: %v", aerr)
			}
			_, rbody, _, rerr := DecodeFrame(re)
			var back SetRequest
			if rerr != nil || ParseSetRequest(rbody, &back) != nil ||
				back.ID != req.ID || back.N != req.N || len(back.Pairs) != len(req.Pairs) {
				t.Fatalf("set request roundtrip mismatch: % x -> %+v -> % x -> %+v (%v)",
					data[:n], req, re, back, rerr)
			}
			for i := range back.Pairs {
				if back.Pairs[i] != req.Pairs[i] {
					t.Fatalf("set request pair %d mismatch: %+v vs %+v", i, req, back)
				}
			}
		case TypeSetResponse:
			var resp SetResponse
			if perr := ParseSetResponse(body, &resp); perr != nil {
				if !typed(perr) {
					t.Fatalf("ParseSetResponse: untyped error %v", perr)
				}
				return
			}
			re := AppendSetResponse(nil, &resp)
			_, rbody, _, rerr := DecodeFrame(re)
			var back SetResponse
			if rerr != nil || ParseSetResponse(rbody, &back) != nil || back != resp {
				t.Fatalf("set response roundtrip mismatch: % x -> %+v -> % x -> %+v (%v)",
					data[:n], resp, re, back, rerr)
			}
		case TypeDeltaRequest:
			var req DeltaRequest
			if perr := ParseDeltaRequest(body, &req); perr != nil {
				if !typed(perr) {
					t.Fatalf("ParseDeltaRequest: untyped error %v", perr)
				}
				return
			}
			if req.Deadline() < 0 {
				t.Fatalf("negative deadline %v survived ParseDeltaRequest", req.Deadline())
			}
			re, aerr := AppendDeltaRequest(nil, &req)
			if aerr != nil {
				t.Fatalf("re-encode of parsed delta request failed: %v", aerr)
			}
			_, rbody, _, rerr := DecodeFrame(re)
			var back DeltaRequest
			if rerr != nil || ParseDeltaRequest(rbody, &back) != nil ||
				back.ID != req.ID || back.Session != req.Session ||
				back.DeadlineMS != req.DeadlineMS || back.Trace != req.Trace ||
				back.Span != req.Span || back.Flags != req.Flags ||
				len(back.Remove) != len(req.Remove) || len(back.Add) != len(req.Add) {
				t.Fatalf("delta request roundtrip mismatch: % x -> %+v -> % x -> %+v (%v)",
					data[:n], req, re, back, rerr)
			}
			for i := range back.Remove {
				if back.Remove[i] != req.Remove[i] {
					t.Fatalf("delta remove %d mismatch: %+v vs %+v", i, req, back)
				}
			}
			for i := range back.Add {
				if back.Add[i] != req.Add[i] {
					t.Fatalf("delta add %d mismatch: %+v vs %+v", i, req, back)
				}
			}
		case TypeDeltaResponse:
			var resp DeltaResponse
			if perr := ParseDeltaResponse(body, &resp); perr != nil {
				if !typed(perr) {
					t.Fatalf("ParseDeltaResponse: untyped error %v", perr)
				}
				return
			}
			re := AppendDeltaResponse(nil, &resp)
			_, rbody, _, rerr := DecodeFrame(re)
			var back DeltaResponse
			if rerr != nil || ParseDeltaResponse(rbody, &back) != nil || back != resp {
				t.Fatalf("delta response roundtrip mismatch: % x -> %+v -> % x -> %+v (%v)",
					data[:n], resp, re, back, rerr)
			}
		default:
			t.Fatalf("DecodeFrame returned unknown type %#x without error", typ)
		}
	})
}

// Package wire is the compact binary framing for CST scheduling traffic:
// the request/answer protocol cstserved speaks on its -wire-addr TCP
// listener, built for persistent pipelined connections and an
// allocation-free hot path.
//
// The design reuses the packing idiom of internal/ctrl's fixed-width
// control words — every field has one unambiguous binary form — but packs
// with varints instead of fixed uint32s because scheduling requests are
// dominated by tiny integers (PE indices, request ids): a typical request
// frame is 6 bytes against ~60 for its HTTP/JSON equivalent, before HTTP
// headers.
//
// Stream layout:
//
//	hello     := "CSTW" version:uint8           (client → server)
//	accept    := "CSTW" version:uint8           (server → client)
//	frame     := length:uvarint payload
//	payload   := type:uint8 body
//	request   := id:uvarint src:uvarint dst:uvarint deadline_ms:uvarint
//	response  := id:uvarint status:uvarint shard:varint arrival:varint
//	             dispatched:varint finished:varint latency_rounds:varint
//	             errlen:uvarint err:bytes
//
// Protocol version 2 adds whole-set scheduling frames for the hybrid
// planner (arbitrary, possibly non-well-nested communication sets):
//
//	setreq    := id:uvarint n:uvarint count:uvarint (src:uvarint dst:uvarint)*
//	setresp   := id:uvarint status:uvarint rounds:uvarint bound:uvarint
//	             width:uvarint batches:uvarint residual:uvarint
//	             units:uvarint strategy:uint8 errlen:uvarint err:bytes
//
// Set frames are only legal on a session that negotiated version >= 2; a
// v1 peer never sees the new type bytes. MaxFrameBytes doubles as the set
// size bound: a set request must pack its (n, pairs) into one frame, which
// caps a v2 set at roughly MaxFrameBytes/4 communications for multi-byte
// PE indices — far above the fabric sizes cstserved runs.
//
// Protocol version 3 adds span-trace context so one request's span tree
// survives the protocol hop (see internal/obs). On a v3 session every
// request and set-request body carries a trailing trace block and every
// response carries the server-assigned trace id:
//
//	reqtrace  := trace:uvarint span:uvarint flags:uint8     (after deadline_ms / pairs)
//	resptrace := trace:uvarint                              (before errlen)
//
// flags bit 0 = sampled. An untraced request sends three zero bytes — the
// layout is fixed per version, never optional, so v3 parsing stays
// deterministic and the unsampled hot path stays allocation-free. v1/v2
// sessions are byte-identical to before: the codecs take the negotiated
// version and only read or write the trace block at v3+.
//
// Protocol version 4 adds session-scoped delta frames for incremental
// scheduling (padr.Engine.Apply): a client opens a logical session by
// sending its first delta against an empty set, then mutates it in place
// with add/remove pairs; the server keeps a warm engine per session and
// reuses Phase 1 state outside the dirty root paths:
//
//	deltareq  := id:uvarint session:uvarint deadline_ms:uvarint
//	             nremove:uvarint (src:uvarint dst:uvarint)*
//	             nadd:uvarint (src:uvarint dst:uvarint)*
//	             trace:uvarint span:uvarint flags:uint8
//	deltaresp := id:uvarint session:uvarint status:uvarint rounds:uvarint
//	             width:uvarint size:uvarint fallback:uint8 trace:uvarint
//	             errlen:uvarint err:bytes
//
// Delta frames are only legal on a session that negotiated version >= 4,
// which implies the v3 trace layout — their trace block is unconditional.
// Status reuses the HTTP mapping (200 applied, 400 invalid delta, 429
// session table full, 500 failed, 503 draining, 504 deadline); fallback=1
// flags a 200 that was served by a from-scratch fallback run rather than
// an incremental apply. Size is the resulting session set size. v1–v3
// sessions are byte-identical to before: a pre-v4 peer never sees the new
// type bytes.
//
// The id correlates pipelined requests with their answers: responses may
// return out of submission order (conflict-deferred waves and deadline
// expiries reorder), so clients must match on id, never on arrival order.
//
// Every decode error is one of the typed sentinels below (wrapped with
// detail); decoders never panic on junk and never allocate proportionally
// to a length claim — a frame announcing more than MaxFrameBytes is
// rejected before any buffer grows.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"time"
)

// Protocol constants. Version is the newest protocol revision this build
// speaks; the handshake settles on min(client, server) and rejects 0.
const (
	// Magic opens both handshake directions.
	Magic = "CSTW"
	// Version is the current protocol revision: v4 adds session-scoped
	// delta frames for incremental scheduling.
	Version = 4
	// VersionSets is the first revision that speaks the set frames.
	VersionSets = 2
	// VersionTrace is the first revision whose frames carry span-trace
	// context blocks.
	VersionTrace = 3
	// VersionDelta is the first revision that speaks the delta frames.
	VersionDelta = 4
	// MaxFrameBytes bounds a frame payload. Requests are ~6 bytes and
	// responses ~20 plus a short error string; anything larger is a
	// corrupt or hostile stream.
	MaxFrameBytes = 4096
	// HandshakeBytes is the size of each handshake message.
	HandshakeBytes = len(Magic) + 1
)

// Frame types.
const (
	// TypeRequest frames a scheduling request (client → server).
	TypeRequest = 0x01
	// TypeResponse frames a terminal answer (server → client).
	TypeResponse = 0x02
	// TypeSetRequest frames a whole-set scheduling request (v2+).
	TypeSetRequest = 0x03
	// TypeSetResponse frames a whole-set answer (v2+).
	TypeSetResponse = 0x04
	// TypeDeltaRequest frames a session-scoped delta request (v4+).
	TypeDeltaRequest = 0x05
	// TypeDeltaResponse frames a delta answer (v4+).
	TypeDeltaResponse = 0x06
)

// Trace-block flag bits (v3+).
const (
	// FlagSampled marks the request's trace as sampled: the server must
	// record spans for it regardless of its own head-sampling rate.
	FlagSampled = 0x01
)

// Strategy codes a SetResponse carries (matching internal/hybrid's
// strategy names without importing it — wire stays dependency-free).
const (
	// StrategyNone is the zero strategy (non-200 answers).
	StrategyNone = 0
	// StrategyPeel is the circuit-first peel pipeline.
	StrategyPeel = 1
	// StrategyColoring is the pure conflict-coloring plan.
	StrategyColoring = 2
)

// Typed decode errors. Decoders wrap these with detail; match with
// errors.Is.
var (
	// ErrBadMagic rejects a handshake that does not open with Magic.
	ErrBadMagic = errors.New("wire: bad magic")
	// ErrVersion rejects an unusable protocol version (0, or newer than
	// the local side speaks after negotiation).
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrFrameTooLarge rejects a length prefix beyond MaxFrameBytes
	// before any buffer is grown for it.
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameBytes")
	// ErrTruncated reports a frame or field cut short.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrBadFrame reports structurally invalid bytes: junk varints,
	// out-of-range fields, trailing garbage.
	ErrBadFrame = errors.New("wire: malformed frame")
	// ErrUnknownType reports an unrecognized frame type byte.
	ErrUnknownType = errors.New("wire: unknown frame type")
)

// Request is one scheduling request: schedule the communication Src → Dst,
// optionally bounded by DeadlineMS milliseconds of wall-clock time. ID
// correlates the eventual Response on a pipelined connection.
type Request struct {
	ID         uint64
	Src, Dst   int
	DeadlineMS int64
	// Trace/Span/Flags are the propagated span-trace context (v3+; zero =
	// untraced). Flags bit 0 (FlagSampled) forces server-side sampling so
	// a client-initiated trace stays connected across the hop.
	Trace uint64
	Span  uint64
	Flags uint8
}

// Deadline converts DeadlineMS to a duration (0 means the server default).
func (r *Request) Deadline() time.Duration {
	return time.Duration(r.DeadlineMS) * time.Millisecond
}

// Response is the terminal answer for request ID. Status carries the same
// HTTP mapping as serve.Result (200 scheduled, 400 bad endpoints, 429
// backpressure, 500 quarantined, 503 draining, 504 deadline); the round
// fields are meaningful only for status 200. Err is empty on success.
type Response struct {
	ID            uint64
	Status        int
	Shard         int
	Arrival       int
	Dispatched    int
	Finished      int
	LatencyRounds int
	Err           string
	// Trace is the server-assigned trace id (v3+; zero when the request
	// was not sampled) — the handle for /trace/flight lookups.
	Trace uint64
}

// SetRequest is one whole-set scheduling request (protocol v2+): plan the
// communication set Pairs over an N-PE fabric with the hybrid scheduler.
// The set may mix orientations and cross arbitrarily; validation happens
// server-side so a malformed set costs a status answer, not a dead
// connection.
type SetRequest struct {
	ID uint64
	// N is the PE count the pairs index into.
	N int
	// Pairs are the (src, dst) communications.
	Pairs [][2]int
	// Trace/Span/Flags are the propagated span-trace context (v3+).
	Trace uint64
	Span  uint64
	Flags uint8
}

// SetResponse is the terminal answer for set request ID. Status reuses the
// HTTP mapping (200 planned, 400 invalid set, 501 planner disabled, 503
// draining); the plan fields are meaningful only for status 200. Units is
// the composite power bill, Strategy one of the Strategy* codes.
type SetResponse struct {
	ID       uint64
	Status   int
	Rounds   int
	Bound    int
	Width    int
	Batches  int
	Residual int
	Units    int64
	Strategy uint8
	Err      string
	// Trace is the server-assigned trace id (v3+; zero when unsampled).
	Trace uint64
}

// DeltaRequest is one session-scoped incremental scheduling request
// (protocol v4+): mutate session Session's communication set by removing
// the Remove pairs and adding the Add pairs, then re-run the schedule
// incrementally. A first delta against an unknown session id opens it with
// an empty set.
type DeltaRequest struct {
	ID         uint64
	Session    uint64
	DeadlineMS int64
	// Remove/Add are the (src, dst) mutations; removes apply first.
	Remove [][2]int
	Add    [][2]int
	// Trace/Span/Flags are the propagated span-trace context (always
	// present: v4 implies the v3 trace layout).
	Trace uint64
	Span  uint64
	Flags uint8
}

// Deadline converts DeadlineMS to a duration (0 means the server default).
func (r *DeltaRequest) Deadline() time.Duration {
	return time.Duration(r.DeadlineMS) * time.Millisecond
}

// DeltaResponse is the terminal answer for delta request ID. Status reuses
// the HTTP mapping (200 applied, 400 invalid delta, 429 session table
// full, 500 failed, 503 draining, 504 deadline); Rounds/Width/Size are
// meaningful only for status 200. Fallback flags a success served by a
// from-scratch fallback run instead of an incremental apply.
type DeltaResponse struct {
	ID       uint64
	Session  uint64
	Status   int
	Rounds   int
	Width    int
	// Size is the session's set size after the delta.
	Size     int
	Fallback bool
	Err      string
	// Trace is the server-assigned trace id (zero when unsampled).
	Trace uint64
}

// AppendDeltaRequest appends a complete delta-request frame (v4 layout) to
// buf, or an error when the mutation list cannot fit MaxFrameBytes.
func AppendDeltaRequest(buf []byte, r *DeltaRequest) ([]byte, error) {
	body := make([]byte, 0, 6+(7+2*(len(r.Remove)+len(r.Add)))*binary.MaxVarintLen64)
	body = append(body, TypeDeltaRequest)
	body = binary.AppendUvarint(body, r.ID)
	body = binary.AppendUvarint(body, r.Session)
	body = binary.AppendUvarint(body, uint64(r.DeadlineMS))
	body = binary.AppendUvarint(body, uint64(len(r.Remove)))
	for _, p := range r.Remove {
		body = binary.AppendUvarint(body, uint64(uint(p[0])))
		body = binary.AppendUvarint(body, uint64(uint(p[1])))
	}
	body = binary.AppendUvarint(body, uint64(len(r.Add)))
	for _, p := range r.Add {
		body = binary.AppendUvarint(body, uint64(uint(p[0])))
		body = binary.AppendUvarint(body, uint64(uint(p[1])))
	}
	body = binary.AppendUvarint(body, r.Trace)
	body = binary.AppendUvarint(body, r.Span)
	body = append(body, r.Flags)
	if len(body) > MaxFrameBytes {
		return buf, fmt.Errorf("%w: delta request needs %d bytes", ErrFrameTooLarge, len(body))
	}
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...), nil
}

// ParseDeltaRequest decodes a delta-request body (as returned by
// DecodeFrame for TypeDeltaRequest) into req. The pair slices are reused
// when they have capacity; claimed counts are checked against the
// remaining bytes before any allocation sized by them.
func ParseDeltaRequest(body []byte, req *DeltaRequest) error {
	id, rest, err := uvarintField(body, "id")
	if err != nil {
		return err
	}
	session, rest, err := uvarintField(rest, "session")
	if err != nil {
		return err
	}
	dl, rest, err := uvarintField(rest, "deadline_ms")
	if err != nil {
		return err
	}
	if dl > math.MaxInt64/uint64(time.Millisecond) {
		return fmt.Errorf("%w: deadline out of range", ErrBadFrame)
	}
	if req.Remove, rest, err = pairList(rest, req.Remove, "nremove"); err != nil {
		return err
	}
	if req.Add, rest, err = pairList(rest, req.Add, "nadd"); err != nil {
		return err
	}
	if req.Trace, req.Span, req.Flags, rest, err = traceBlock(rest); err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after delta request", ErrBadFrame, len(rest))
	}
	req.ID = id
	req.Session = session
	req.DeadlineMS = int64(dl)
	return nil
}

// pairList reads a counted (src, dst) pair list, reusing dst's capacity.
func pairList(b []byte, into [][2]int, name string) ([][2]int, []byte, error) {
	count, rest, err := uvarintField(b, name)
	if err != nil {
		return into, nil, err
	}
	if count > uint64(len(rest))/2 {
		return into, nil, fmt.Errorf("%w: %d pairs claimed with %d bytes left", ErrBadFrame, count, len(rest))
	}
	if cap(into) < int(count) {
		into = make([][2]int, count)
	}
	into = into[:count]
	for i := range into {
		var src, dst uint64
		src, rest, err = uvarintField(rest, "src")
		if err != nil {
			return into, nil, err
		}
		dst, rest, err = uvarintField(rest, "dst")
		if err != nil {
			return into, nil, err
		}
		if src > math.MaxInt32 || dst > math.MaxInt32 {
			return into, nil, fmt.Errorf("%w: endpoint out of range", ErrBadFrame)
		}
		into[i] = [2]int{int(src), int(dst)}
	}
	return into, rest, nil
}

// AppendDeltaResponse appends a complete delta-response frame (v4 layout)
// to buf. Oversized error strings are truncated like AppendResponse's.
func AppendDeltaResponse(buf []byte, r *DeltaResponse) []byte {
	const maxErr = MaxFrameBytes / 2
	errStr := r.Err
	if len(errStr) > maxErr {
		errStr = errStr[:maxErr]
	}
	var body [2 + 8*binary.MaxVarintLen64]byte
	n := 0
	body[n] = TypeDeltaResponse
	n++
	n += binary.PutUvarint(body[n:], r.ID)
	n += binary.PutUvarint(body[n:], r.Session)
	n += binary.PutUvarint(body[n:], uint64(uint(r.Status)))
	n += binary.PutUvarint(body[n:], uint64(uint(r.Rounds)))
	n += binary.PutUvarint(body[n:], uint64(uint(r.Width)))
	n += binary.PutUvarint(body[n:], uint64(uint(r.Size)))
	if r.Fallback {
		body[n] = 1
	} else {
		body[n] = 0
	}
	n++
	n += binary.PutUvarint(body[n:], r.Trace)
	n += binary.PutUvarint(body[n:], uint64(len(errStr)))
	buf = binary.AppendUvarint(buf, uint64(n+len(errStr)))
	buf = append(buf, body[:n]...)
	return append(buf, errStr...)
}

// ParseDeltaResponse decodes a delta-response body (as returned by
// DecodeFrame for TypeDeltaResponse) into resp. It allocates only for a
// non-empty error string.
func ParseDeltaResponse(body []byte, resp *DeltaResponse) error {
	id, rest, err := uvarintField(body, "id")
	if err != nil {
		return err
	}
	session, rest, err := uvarintField(rest, "session")
	if err != nil {
		return err
	}
	var fields [4]uint64
	for i, name := range [...]string{"status", "rounds", "width", "size"} {
		fields[i], rest, err = uvarintField(rest, name)
		if err != nil {
			return err
		}
		if fields[i] > math.MaxInt32 {
			return fmt.Errorf("%w: field %s out of range", ErrBadFrame, name)
		}
	}
	if len(rest) == 0 {
		return fmt.Errorf("%w: field fallback", ErrTruncated)
	}
	fb := rest[0]
	rest = rest[1:]
	if fb > 1 {
		return fmt.Errorf("%w: fallback flag %d", ErrBadFrame, fb)
	}
	trace, rest, err := uvarintField(rest, "trace")
	if err != nil {
		return err
	}
	errLen, rest, err := uvarintField(rest, "errlen")
	if err != nil {
		return err
	}
	if uint64(len(rest)) != errLen {
		return fmt.Errorf("%w: errlen %d with %d bytes left", ErrBadFrame, errLen, len(rest))
	}
	resp.ID = id
	resp.Session = session
	resp.Status = int(fields[0])
	resp.Rounds = int(fields[1])
	resp.Width = int(fields[2])
	resp.Size = int(fields[3])
	resp.Fallback = fb == 1
	resp.Trace = trace
	if errLen == 0 {
		resp.Err = ""
	} else {
		resp.Err = string(rest)
	}
	return nil
}

// AppendRequest appends a complete request frame (length prefix included)
// to buf in the pre-trace (v1/v2) layout. It never allocates when buf has
// capacity. Negative Src/Dst are encoded as large uvarints and rejected by
// the receiver's range check.
func AppendRequest(buf []byte, r *Request) []byte {
	return AppendRequestV(buf, r, VersionSets)
}

// AppendRequestV appends a complete request frame in the layout of the
// negotiated protocol version: at VersionTrace+ the body ends with the
// trace block (zeros when untraced — the layout is fixed per version).
func AppendRequestV(buf []byte, r *Request, version uint8) []byte {
	var body [2 + 6*binary.MaxVarintLen64]byte
	n := 0
	body[n] = TypeRequest
	n++
	n += binary.PutUvarint(body[n:], r.ID)
	n += binary.PutUvarint(body[n:], uint64(uint(r.Src)))
	n += binary.PutUvarint(body[n:], uint64(uint(r.Dst)))
	n += binary.PutUvarint(body[n:], uint64(r.DeadlineMS))
	if version >= VersionTrace {
		n += binary.PutUvarint(body[n:], r.Trace)
		n += binary.PutUvarint(body[n:], r.Span)
		body[n] = r.Flags
		n++
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	return append(buf, body[:n]...)
}

// AppendResponse appends a complete response frame to buf in the
// pre-trace (v1/v2) layout. An Err longer than the frame budget is
// truncated rather than rejected — the status code already carries the
// outcome.
func AppendResponse(buf []byte, r *Response) []byte {
	return AppendResponseV(buf, r, VersionSets)
}

// AppendResponseV appends a complete response frame in the layout of the
// negotiated protocol version: at VersionTrace+ a trace-id uvarint sits
// between latency_rounds and errlen.
func AppendResponseV(buf []byte, r *Response, version uint8) []byte {
	const maxErr = MaxFrameBytes / 2
	errStr := r.Err
	if len(errStr) > maxErr {
		errStr = errStr[:maxErr]
	}
	var body [1 + 8*binary.MaxVarintLen64]byte
	n := 0
	body[n] = TypeResponse
	n++
	n += binary.PutUvarint(body[n:], r.ID)
	n += binary.PutUvarint(body[n:], uint64(uint(r.Status)))
	n += binary.PutVarint(body[n:], int64(r.Shard))
	n += binary.PutVarint(body[n:], int64(r.Arrival))
	n += binary.PutVarint(body[n:], int64(r.Dispatched))
	n += binary.PutVarint(body[n:], int64(r.Finished))
	n += binary.PutVarint(body[n:], int64(r.LatencyRounds))
	if version >= VersionTrace {
		n += binary.PutUvarint(body[n:], r.Trace)
	}
	n += binary.PutUvarint(body[n:], uint64(len(errStr)))
	buf = binary.AppendUvarint(buf, uint64(n+len(errStr)))
	buf = append(buf, body[:n]...)
	return append(buf, errStr...)
}

// AppendSetRequest appends a complete set-request frame to buf in the v2
// layout, or an error when the set cannot fit MaxFrameBytes — the frame
// bound is the protocol's set size limit, checked before any bytes are
// emitted.
func AppendSetRequest(buf []byte, r *SetRequest) ([]byte, error) {
	return AppendSetRequestV(buf, r, VersionSets)
}

// AppendSetRequestV appends a complete set-request frame in the layout of
// the negotiated protocol version: at VersionTrace+ the trace block
// follows the pair list.
func AppendSetRequestV(buf []byte, r *SetRequest, version uint8) ([]byte, error) {
	body := make([]byte, 0, 2+(5+2*len(r.Pairs))*binary.MaxVarintLen64)
	body = append(body, TypeSetRequest)
	body = binary.AppendUvarint(body, r.ID)
	body = binary.AppendUvarint(body, uint64(uint(r.N)))
	body = binary.AppendUvarint(body, uint64(len(r.Pairs)))
	for _, p := range r.Pairs {
		body = binary.AppendUvarint(body, uint64(uint(p[0])))
		body = binary.AppendUvarint(body, uint64(uint(p[1])))
	}
	if version >= VersionTrace {
		body = binary.AppendUvarint(body, r.Trace)
		body = binary.AppendUvarint(body, r.Span)
		body = append(body, r.Flags)
	}
	if len(body) > MaxFrameBytes {
		return buf, fmt.Errorf("%w: set request needs %d bytes", ErrFrameTooLarge, len(body))
	}
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...), nil
}

// AppendSetResponse appends a complete set-response frame to buf in the
// v2 layout. Oversized error strings are truncated like AppendResponse's.
func AppendSetResponse(buf []byte, r *SetResponse) []byte {
	return AppendSetResponseV(buf, r, VersionSets)
}

// AppendSetResponseV appends a complete set-response frame in the layout
// of the negotiated protocol version: at VersionTrace+ a trace-id uvarint
// sits between strategy and errlen.
func AppendSetResponseV(buf []byte, r *SetResponse, version uint8) []byte {
	const maxErr = MaxFrameBytes / 2
	errStr := r.Err
	if len(errStr) > maxErr {
		errStr = errStr[:maxErr]
	}
	var body [2 + 9*binary.MaxVarintLen64]byte
	n := 0
	body[n] = TypeSetResponse
	n++
	n += binary.PutUvarint(body[n:], r.ID)
	n += binary.PutUvarint(body[n:], uint64(uint(r.Status)))
	n += binary.PutUvarint(body[n:], uint64(uint(r.Rounds)))
	n += binary.PutUvarint(body[n:], uint64(uint(r.Bound)))
	n += binary.PutUvarint(body[n:], uint64(uint(r.Width)))
	n += binary.PutUvarint(body[n:], uint64(uint(r.Batches)))
	n += binary.PutUvarint(body[n:], uint64(uint(r.Residual)))
	n += binary.PutUvarint(body[n:], uint64(r.Units))
	body[n] = r.Strategy
	n++
	if version >= VersionTrace {
		n += binary.PutUvarint(body[n:], r.Trace)
	}
	n += binary.PutUvarint(body[n:], uint64(len(errStr)))
	buf = binary.AppendUvarint(buf, uint64(n+len(errStr)))
	buf = append(buf, body[:n]...)
	return append(buf, errStr...)
}

// ParseSetRequest decodes a v2-layout set-request body (as returned by
// DecodeFrame for TypeSetRequest) into req. The pair slice is reused when
// it has capacity. The claimed pair count is checked against the remaining
// bytes (each pair needs at least two) before any allocation sized by it.
func ParseSetRequest(body []byte, req *SetRequest) error {
	return ParseSetRequestV(body, req, VersionSets)
}

// ParseSetRequestV decodes a set-request body in the layout of the
// negotiated protocol version (trace block at VersionTrace+).
func ParseSetRequestV(body []byte, req *SetRequest, version uint8) error {
	id, rest, err := uvarintField(body, "id")
	if err != nil {
		return err
	}
	n, rest, err := uvarintField(rest, "n")
	if err != nil {
		return err
	}
	count, rest, err := uvarintField(rest, "count")
	if err != nil {
		return err
	}
	if n > math.MaxInt32 {
		return fmt.Errorf("%w: fabric size out of range", ErrBadFrame)
	}
	if count > uint64(len(rest))/2 {
		return fmt.Errorf("%w: %d pairs claimed with %d bytes left", ErrBadFrame, count, len(rest))
	}
	req.ID = id
	req.N = int(n)
	if cap(req.Pairs) < int(count) {
		req.Pairs = make([][2]int, count)
	}
	req.Pairs = req.Pairs[:count]
	for i := range req.Pairs {
		var src, dst uint64
		src, rest, err = uvarintField(rest, "src")
		if err != nil {
			return err
		}
		dst, rest, err = uvarintField(rest, "dst")
		if err != nil {
			return err
		}
		if src > math.MaxInt32 || dst > math.MaxInt32 {
			return fmt.Errorf("%w: endpoint out of range", ErrBadFrame)
		}
		req.Pairs[i] = [2]int{int(src), int(dst)}
	}
	req.Trace, req.Span, req.Flags = 0, 0, 0
	if version >= VersionTrace {
		if req.Trace, req.Span, req.Flags, rest, err = traceBlock(rest); err != nil {
			return err
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after set request", ErrBadFrame, len(rest))
	}
	return nil
}

// traceBlock reads the v3 request trace block (trace, span, flags).
func traceBlock(b []byte) (trace, span uint64, flags uint8, rest []byte, err error) {
	trace, rest, err = uvarintField(b, "trace")
	if err != nil {
		return 0, 0, 0, nil, err
	}
	span, rest, err = uvarintField(rest, "span")
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if len(rest) == 0 {
		return 0, 0, 0, nil, fmt.Errorf("%w: field flags", ErrTruncated)
	}
	return trace, span, rest[0], rest[1:], nil
}

// ParseSetResponse decodes a v2-layout set-response body (as returned by
// DecodeFrame for TypeSetResponse) into resp. It allocates only for a
// non-empty error string.
func ParseSetResponse(body []byte, resp *SetResponse) error {
	return ParseSetResponseV(body, resp, VersionSets)
}

// ParseSetResponseV decodes a set-response body in the layout of the
// negotiated protocol version (trace id at VersionTrace+).
func ParseSetResponseV(body []byte, resp *SetResponse, version uint8) error {
	id, rest, err := uvarintField(body, "id")
	if err != nil {
		return err
	}
	var fields [6]uint64
	for i, name := range [...]string{"status", "rounds", "bound", "width", "batches", "residual"} {
		fields[i], rest, err = uvarintField(rest, name)
		if err != nil {
			return err
		}
		if fields[i] > math.MaxInt32 {
			return fmt.Errorf("%w: field %s out of range", ErrBadFrame, name)
		}
	}
	units, rest, err := uvarintField(rest, "units")
	if err != nil {
		return err
	}
	if units > math.MaxInt64 {
		return fmt.Errorf("%w: units out of range", ErrBadFrame)
	}
	if len(rest) == 0 {
		return fmt.Errorf("%w: field strategy", ErrTruncated)
	}
	strategy := rest[0]
	rest = rest[1:]
	if strategy > StrategyColoring {
		return fmt.Errorf("%w: strategy code %d", ErrBadFrame, strategy)
	}
	var trace uint64
	if version >= VersionTrace {
		if trace, rest, err = uvarintField(rest, "trace"); err != nil {
			return err
		}
	}
	errLen, rest, err := uvarintField(rest, "errlen")
	if err != nil {
		return err
	}
	if uint64(len(rest)) != errLen {
		return fmt.Errorf("%w: errlen %d with %d bytes left", ErrBadFrame, errLen, len(rest))
	}
	resp.ID = id
	resp.Status = int(fields[0])
	resp.Rounds = int(fields[1])
	resp.Bound = int(fields[2])
	resp.Width = int(fields[3])
	resp.Batches = int(fields[4])
	resp.Residual = int(fields[5])
	resp.Units = int64(units)
	resp.Strategy = strategy
	resp.Trace = trace
	if errLen == 0 {
		resp.Err = ""
	} else {
		resp.Err = string(rest)
	}
	return nil
}

// DecodeFrame parses one length-prefixed frame from the front of b,
// returning the frame type, its body (aliasing b, no copy) and the total
// bytes consumed. Incomplete input returns ErrTruncated; an oversized
// length claim returns ErrFrameTooLarge without consuming or allocating.
func DecodeFrame(b []byte) (typ byte, body []byte, n int, err error) {
	length, ln := binary.Uvarint(b)
	if ln == 0 {
		return 0, nil, 0, fmt.Errorf("%w: length prefix", ErrTruncated)
	}
	if ln < 0 || length > MaxFrameBytes {
		return 0, nil, 0, fmt.Errorf("%w: claimed %d bytes", ErrFrameTooLarge, length)
	}
	if length == 0 {
		return 0, nil, 0, fmt.Errorf("%w: empty payload", ErrBadFrame)
	}
	if uint64(len(b)-ln) < length {
		return 0, nil, 0, fmt.Errorf("%w: payload wants %d bytes, have %d", ErrTruncated, length, len(b)-ln)
	}
	payload := b[ln : ln+int(length)]
	switch payload[0] {
	case TypeRequest, TypeResponse, TypeSetRequest, TypeSetResponse,
		TypeDeltaRequest, TypeDeltaResponse:
		return payload[0], payload[1:], ln + int(length), nil
	default:
		return 0, nil, 0, fmt.Errorf("%w: 0x%02x", ErrUnknownType, payload[0])
	}
}

// uvarintField reads one uvarint from b, rejecting junk encodings.
func uvarintField(b []byte, name string) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: field %s", badVarintErr(b, n), name)
	}
	return v, b[n:], nil
}

// varintField reads one zigzag varint from b, rejecting junk encodings.
func varintField(b []byte, name string) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: field %s", badVarintErr(b, n), name)
	}
	return v, b[n:], nil
}

// badVarintErr distinguishes a short buffer (truncated) from an
// overlong/overflowing varint (malformed).
func badVarintErr(b []byte, n int) error {
	if n == 0 && len(b) < binary.MaxVarintLen64 {
		return ErrTruncated
	}
	return ErrBadFrame
}

// ParseRequest decodes a v1/v2-layout request body (as returned by
// DecodeFrame for TypeRequest) into req without allocating. The body must
// be exactly one request: trailing bytes are ErrBadFrame.
func ParseRequest(body []byte, req *Request) error {
	return ParseRequestV(body, req, VersionSets)
}

// ParseRequestV decodes a request body in the layout of the negotiated
// protocol version (trace block at VersionTrace+) without allocating.
func ParseRequestV(body []byte, req *Request, version uint8) error {
	id, rest, err := uvarintField(body, "id")
	if err != nil {
		return err
	}
	src, rest, err := uvarintField(rest, "src")
	if err != nil {
		return err
	}
	dst, rest, err := uvarintField(rest, "dst")
	if err != nil {
		return err
	}
	dl, rest, err := uvarintField(rest, "deadline_ms")
	if err != nil {
		return err
	}
	var trace, span uint64
	var flags uint8
	if version >= VersionTrace {
		if trace, span, flags, rest, err = traceBlock(rest); err != nil {
			return err
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after request", ErrBadFrame, len(rest))
	}
	if src > math.MaxInt32 || dst > math.MaxInt32 {
		return fmt.Errorf("%w: endpoint out of range", ErrBadFrame)
	}
	if dl > math.MaxInt64/uint64(time.Millisecond) {
		return fmt.Errorf("%w: deadline out of range", ErrBadFrame)
	}
	req.ID = id
	req.Src = int(src)
	req.Dst = int(dst)
	req.DeadlineMS = int64(dl)
	req.Trace = trace
	req.Span = span
	req.Flags = flags
	return nil
}

// ParseResponse decodes a v1/v2-layout response body (as returned by
// DecodeFrame for TypeResponse) into resp. It allocates only for a
// non-empty error string.
func ParseResponse(body []byte, resp *Response) error {
	return ParseResponseV(body, resp, VersionSets)
}

// ParseResponseV decodes a response body in the layout of the negotiated
// protocol version (trace id at VersionTrace+).
func ParseResponseV(body []byte, resp *Response, version uint8) error {
	id, rest, err := uvarintField(body, "id")
	if err != nil {
		return err
	}
	status, rest, err := uvarintField(rest, "status")
	if err != nil {
		return err
	}
	if status > math.MaxInt32 {
		return fmt.Errorf("%w: status out of range", ErrBadFrame)
	}
	var fields [5]int64
	for i, name := range [...]string{"shard", "arrival", "dispatched", "finished", "latency_rounds"} {
		fields[i], rest, err = varintField(rest, name)
		if err != nil {
			return err
		}
		if fields[i] > math.MaxInt32 || fields[i] < math.MinInt32 {
			return fmt.Errorf("%w: field %s out of range", ErrBadFrame, name)
		}
	}
	var trace uint64
	if version >= VersionTrace {
		if trace, rest, err = uvarintField(rest, "trace"); err != nil {
			return err
		}
	}
	errLen, rest, err := uvarintField(rest, "errlen")
	if err != nil {
		return err
	}
	if uint64(len(rest)) != errLen {
		return fmt.Errorf("%w: errlen %d with %d bytes left", ErrBadFrame, errLen, len(rest))
	}
	resp.ID = id
	resp.Status = int(status)
	resp.Shard = int(fields[0])
	resp.Arrival = int(fields[1])
	resp.Dispatched = int(fields[2])
	resp.Finished = int(fields[3])
	resp.LatencyRounds = int(fields[4])
	resp.Trace = trace
	if errLen == 0 {
		resp.Err = ""
	} else {
		resp.Err = string(rest)
	}
	return nil
}

// AppendHello appends a handshake message offering version.
func AppendHello(buf []byte, version uint8) []byte {
	return append(append(buf, Magic...), version)
}

// ParseHello validates a handshake message and returns the offered
// version. Version 0 is ErrVersion — there is no protocol 0 to fall back
// to.
func ParseHello(b []byte) (uint8, error) {
	if len(b) < HandshakeBytes {
		return 0, fmt.Errorf("%w: handshake wants %d bytes, have %d", ErrTruncated, HandshakeBytes, len(b))
	}
	if string(b[:len(Magic)]) != Magic {
		return 0, fmt.Errorf("%w: %q", ErrBadMagic, b[:len(Magic)])
	}
	v := b[len(Magic)]
	if v == 0 {
		return 0, fmt.Errorf("%w: 0", ErrVersion)
	}
	return v, nil
}

// Negotiate resolves the version a server answers a client hello with:
// the newer side yields, so the session runs min(offered, local).
func Negotiate(offered, local uint8) uint8 {
	if offered < local {
		return offered
	}
	return local
}

// Reader reads frames off a stream into a reusable buffer: steady-state
// Next calls allocate nothing. It is not safe for concurrent use.
type Reader struct {
	br  *bufio.Reader
	buf []byte
}

// NewReader wraps r for frame reading.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 4096)}
}

// Reset rearms the reader onto a new stream, keeping its buffers.
func (r *Reader) Reset(src io.Reader) { r.br.Reset(src) }

// Next reads one frame and returns its type and body. The body aliases the
// reader's internal buffer and is valid only until the next call. io.EOF
// surfaces as-is at a clean frame boundary; a partial frame is
// io.ErrUnexpectedEOF.
func (r *Reader) Next() (typ byte, body []byte, err error) {
	length, err := binary.ReadUvarint(r.br)
	if err != nil {
		return 0, nil, err
	}
	if length > MaxFrameBytes {
		return 0, nil, fmt.Errorf("%w: claimed %d bytes", ErrFrameTooLarge, length)
	}
	if length == 0 {
		return 0, nil, fmt.Errorf("%w: empty payload", ErrBadFrame)
	}
	if cap(r.buf) < int(length) {
		r.buf = make([]byte, length)
	}
	payload := r.buf[:length]
	if _, err := io.ReadFull(r.br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	switch payload[0] {
	case TypeRequest, TypeResponse, TypeSetRequest, TypeSetResponse,
		TypeDeltaRequest, TypeDeltaResponse:
		return payload[0], payload[1:], nil
	default:
		return 0, nil, fmt.Errorf("%w: 0x%02x", ErrUnknownType, payload[0])
	}
}

// ClientConn is a client side of the wire protocol: one persistent
// connection with pipelined sends. It is not safe for concurrent use; run
// one ClientConn per goroutine (cstload runs one per client).
type ClientConn struct {
	conn    net.Conn
	r       *Reader
	bw      *bufio.Writer
	scratch []byte
	version uint8
}

// Dial connects, performs the handshake and returns a ready connection.
func Dial(addr string, timeout time.Duration) (*ClientConn, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c, err := NewClientConn(conn, timeout)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClientConn performs the client handshake over an established
// connection (handy for tests over in-memory pipes), offering the newest
// protocol version. The timeout bounds the handshake only.
func NewClientConn(conn net.Conn, timeout time.Duration) (*ClientConn, error) {
	return NewClientConnVersion(conn, timeout, Version)
}

// NewClientConnVersion performs the client handshake offering a specific
// protocol version — the knob behind the version-negotiation matrix tests
// and staged downgrades. The session settles on min(offer, server).
func NewClientConnVersion(conn net.Conn, timeout time.Duration, offer uint8) (*ClientConn, error) {
	c := &ClientConn{
		conn: conn,
		r:    NewReader(conn),
		bw:   bufio.NewWriterSize(conn, 4096),
	}
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
		defer func() { _ = conn.SetDeadline(time.Time{}) }()
	}
	c.scratch = AppendHello(c.scratch[:0], offer)
	if _, err := conn.Write(c.scratch); err != nil {
		return nil, fmt.Errorf("wire: handshake write: %w", err)
	}
	var accept [HandshakeBytes]byte
	if _, err := io.ReadFull(c.r.br, accept[:]); err != nil {
		return nil, fmt.Errorf("wire: handshake read: %w", err)
	}
	v, err := ParseHello(accept[:])
	if err != nil {
		return nil, err
	}
	if v > offer {
		return nil, fmt.Errorf("%w: server answered v%d, offered v%d", ErrVersion, v, offer)
	}
	c.version = v
	return c, nil
}

// ProtocolVersion returns the negotiated protocol version.
func (c *ClientConn) ProtocolVersion() uint8 { return c.version }

// Send buffers one request frame in the session's negotiated layout; call
// Flush before blocking on Recv.
func (c *ClientConn) Send(req *Request) error {
	c.scratch = AppendRequestV(c.scratch[:0], req, c.version)
	_, err := c.bw.Write(c.scratch)
	return err
}

// SendSet buffers one whole-set request frame; call Flush before blocking
// on RecvSet. The session must have negotiated protocol v2 or newer — a v1
// server would kill the connection on the unknown type byte.
func (c *ClientConn) SendSet(req *SetRequest) error {
	if c.version < VersionSets {
		return fmt.Errorf("%w: set frames need v%d, session negotiated v%d",
			ErrVersion, VersionSets, c.version)
	}
	var err error
	c.scratch, err = AppendSetRequestV(c.scratch[:0], req, c.version)
	if err != nil {
		return err
	}
	_, err = c.bw.Write(c.scratch)
	return err
}

// SendDelta buffers one delta-request frame. The negotiated version must
// be at least VersionDelta.
func (c *ClientConn) SendDelta(req *DeltaRequest) error {
	if c.version < VersionDelta {
		return fmt.Errorf("%w: delta frames need v%d, session negotiated v%d",
			ErrVersion, VersionDelta, c.version)
	}
	var err error
	c.scratch, err = AppendDeltaRequest(c.scratch[:0], req)
	if err != nil {
		return err
	}
	_, err = c.bw.Write(c.scratch)
	return err
}

// RecvDelta blocks for the next delta-response frame and decodes it into resp.
func (c *ClientConn) RecvDelta(resp *DeltaResponse) error {
	typ, body, err := c.r.Next()
	if err != nil {
		return err
	}
	if typ != TypeDeltaResponse {
		return fmt.Errorf("%w: 0x%02x where a delta response was expected", ErrUnknownType, typ)
	}
	return ParseDeltaResponse(body, resp)
}

// RecvSet blocks for the next set-response frame and decodes it into resp.
func (c *ClientConn) RecvSet(resp *SetResponse) error {
	typ, body, err := c.r.Next()
	if err != nil {
		return err
	}
	if typ != TypeSetResponse {
		return fmt.Errorf("%w: 0x%02x where a set response was expected", ErrUnknownType, typ)
	}
	return ParseSetResponseV(body, resp, c.version)
}

// Flush pushes buffered frames onto the wire.
func (c *ClientConn) Flush() error { return c.bw.Flush() }

// Recv blocks for the next response frame and decodes it into resp.
// Responses arrive in completion order, not send order — correlate by ID.
func (c *ClientConn) Recv(resp *Response) error {
	typ, body, err := c.r.Next()
	if err != nil {
		return err
	}
	if typ != TypeResponse {
		return fmt.Errorf("%w: 0x%02x where a response was expected", ErrUnknownType, typ)
	}
	return ParseResponseV(body, resp, c.version)
}

// Close tears the connection down.
func (c *ClientConn) Close() error { return c.conn.Close() }

package wire

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// TestDeltaRequestFrameGolden pins the v4 delta-request encoding byte for
// byte: the frame layout is a protocol contract, drift is a break.
func TestDeltaRequestFrameGolden(t *testing.T) {
	cases := []struct {
		name string
		req  DeltaRequest
		want []byte
	}{
		{
			name: "one remove one add",
			req: DeltaRequest{ID: 1, Session: 7, DeadlineMS: 250,
				Remove: [][2]int{{0, 8}}, Add: [][2]int{{0, 2}}},
			// length=14 | type | id=1 | session=7 | deadline=250 (0xfa 0x01)
			// | nremove=1 | 0 8 | nadd=1 | 0 2 | trace=0 | span=0 | flags=0
			want: []byte{0x0e, 0x05, 0x01, 0x07, 0xfa, 0x01,
				0x01, 0x00, 0x08, 0x01, 0x00, 0x02, 0x00, 0x00, 0x00},
		},
		{
			name: "empty delta opens a session",
			req:  DeltaRequest{ID: 2, Session: 1},
			// length=9 | type | id=2 | session=1 | deadline=0 | nremove=0
			// | nadd=0 | trace=0 | span=0 | flags=0
			want: []byte{0x09, 0x05, 0x02, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00},
		},
		{
			name: "trace context rides along",
			req:  DeltaRequest{ID: 3, Session: 300, Trace: 0xabc, Span: 1, Flags: 1},
			// length=11 | type | id=3 | session=300 (0xac 0x02) | deadline=0
			// | nremove=0 | nadd=0 | trace=0xabc (0xbc 0x15) | span=1 | flags=1
			want: []byte{0x0b, 0x05, 0x03, 0xac, 0x02, 0x00, 0x00, 0x00, 0xbc, 0x15, 0x01, 0x01},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := AppendDeltaRequest(nil, &tc.req)
			if err != nil {
				t.Fatalf("AppendDeltaRequest: %v", err)
			}
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("AppendDeltaRequest(%+v) = % x, want % x", tc.req, got, tc.want)
			}
			typ, body, n, err := DecodeFrame(got)
			if err != nil || typ != TypeDeltaRequest || n != len(got) {
				t.Fatalf("DecodeFrame: typ=%#x n=%d err=%v", typ, n, err)
			}
			var back DeltaRequest
			if err := ParseDeltaRequest(body, &back); err != nil {
				t.Fatalf("ParseDeltaRequest: %v", err)
			}
			// Normalize empty-vs-nil pair slices before the deep compare.
			if len(back.Remove) == 0 {
				back.Remove = nil
			}
			if len(back.Add) == 0 {
				back.Add = nil
			}
			if !reflect.DeepEqual(back, tc.req) {
				t.Fatalf("roundtrip: got %+v, want %+v", back, tc.req)
			}
		})
	}
}

// TestDeltaResponseFrameGolden pins the v4 delta-response encoding.
func TestDeltaResponseFrameGolden(t *testing.T) {
	cases := []struct {
		name string
		resp DeltaResponse
		want []byte
	}{
		{
			name: "applied",
			resp: DeltaResponse{ID: 1, Session: 7, Status: 200, Rounds: 2, Width: 2, Size: 5},
			// length=11 | type | id=1 | session=7 | status=200 (0xc8 0x01)
			// | rounds=2 | width=2 | size=5 | fallback=0 | trace=0 | errlen=0
			want: []byte{0x0b, 0x06, 0x01, 0x07, 0xc8, 0x01, 0x02, 0x02, 0x05, 0x00, 0x00, 0x00},
		},
		{
			name: "served by fallback",
			resp: DeltaResponse{ID: 4, Session: 2, Status: 200, Rounds: 3, Width: 3,
				Size: 8, Fallback: true, Trace: 5},
			// length=11 | type | id=4 | session=2 | status=200 | rounds=3
			// | width=3 | size=8 | fallback=1 | trace=5 | errlen=0
			want: []byte{0x0b, 0x06, 0x04, 0x02, 0xc8, 0x01, 0x03, 0x03, 0x08, 0x01, 0x05, 0x00},
		},
		{
			name: "rejected with error text",
			resp: DeltaResponse{ID: 9, Session: 1, Status: 400, Err: "bad delta"},
			// length=20 | type | id=9 | session=1 | status=400 (0x90 0x03)
			// | rounds=0 | width=0 | size=0 | fallback=0 | trace=0
			// | errlen=9 | "bad delta"
			want: append([]byte{0x14, 0x06, 0x09, 0x01, 0x90, 0x03,
				0x00, 0x00, 0x00, 0x00, 0x00, 0x09}, []byte("bad delta")...),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := AppendDeltaResponse(nil, &tc.resp)
			if !bytes.Equal(got, tc.want) {
				t.Fatalf("AppendDeltaResponse(%+v) = % x, want % x", tc.resp, got, tc.want)
			}
			typ, body, n, err := DecodeFrame(got)
			if err != nil || typ != TypeDeltaResponse || n != len(got) {
				t.Fatalf("DecodeFrame: typ=%#x n=%d err=%v", typ, n, err)
			}
			var back DeltaResponse
			if err := ParseDeltaResponse(body, &back); err != nil {
				t.Fatalf("ParseDeltaResponse: %v", err)
			}
			if back != tc.resp {
				t.Fatalf("roundtrip: got %+v, want %+v", back, tc.resp)
			}
		})
	}

	// A junk fallback byte is malformed, not silently accepted.
	frame := AppendDeltaResponse(nil, &DeltaResponse{ID: 1, Status: 200})
	_, body, _, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), body...)
	bad[len(bad)-3] = 0x07 // fallback byte sits before trace=0, errlen=0
	var resp DeltaResponse
	if err := ParseDeltaResponse(bad, &resp); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("junk fallback: %v, want ErrBadFrame", err)
	}
}

// TestDeadlineOverflowRejected pins the deadline_ms overflow guard with a
// golden hostile frame: a uvarint above MaxInt64/time.Millisecond would
// wrap Request.Deadline() negative if cast blindly, so the parser must
// reject it as malformed on every frame type that carries a deadline.
func TestDeadlineOverflowRejected(t *testing.T) {
	// uvarint encoding of 2^64-1: nine 0xff bytes then 0x01.
	overflow := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}

	// length=14 | type=request | id=1 | src=0 | dst=1 | deadline=2^64-1
	reqFrame := append([]byte{0x0e, 0x01, 0x01, 0x00, 0x01}, overflow...)
	typ, body, _, err := DecodeFrame(reqFrame)
	if err != nil || typ != TypeRequest {
		t.Fatalf("DecodeFrame: typ=%#x err=%v", typ, err)
	}
	var req Request
	if err := ParseRequest(body, &req); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overflow deadline in request: %v, want ErrBadFrame", err)
	}
	if req.Deadline() < 0 {
		t.Fatalf("negative deadline %v leaked out of a rejected parse", req.Deadline())
	}

	// length=13 | type=deltareq | id=1 | session=1 | deadline=2^64-1
	deltaFrame := append([]byte{0x0d, 0x05, 0x01, 0x01}, overflow...)
	typ, body, _, err = DecodeFrame(deltaFrame)
	if err != nil || typ != TypeDeltaRequest {
		t.Fatalf("DecodeFrame: typ=%#x err=%v", typ, err)
	}
	var dreq DeltaRequest
	if err := ParseDeltaRequest(body, &dreq); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("overflow deadline in delta request: %v, want ErrBadFrame", err)
	}

	// The largest in-range value still parses: a real 292-year deadline.
	maxOK := uint64(int64(^uint64(0)>>1)) / uint64(time.Millisecond)
	ok, err := AppendDeltaRequest(nil, &DeltaRequest{ID: 1, Session: 1, DeadlineMS: int64(maxOK)})
	if err != nil {
		t.Fatal(err)
	}
	_, body, _, err = DecodeFrame(ok)
	if err != nil {
		t.Fatal(err)
	}
	if err := ParseDeltaRequest(body, &dreq); err != nil {
		t.Fatalf("max in-range deadline rejected: %v", err)
	}
	if dreq.Deadline() < 0 {
		t.Fatalf("max in-range deadline went negative: %v", dreq.Deadline())
	}
}

// TestDeltaHostileCounts pins the claimed-count guards: a tiny frame
// claiming a huge pair list must be rejected before any allocation sized
// by the claim.
func TestDeltaHostileCounts(t *testing.T) {
	// length=5 | type | id=1 | session=1 | deadline=0 | nremove=2^31 (claim)
	frame := []byte{0x09, 0x05, 0x01, 0x01, 0x00, 0x80, 0x80, 0x80, 0x80, 0x08}
	_, body, _, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	var req DeltaRequest
	if err := ParseDeltaRequest(body, &req); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("hostile nremove claim: %v, want ErrBadFrame", err)
	}

	// An endpoint above MaxInt32 is out of range for any topology.
	big, err := AppendDeltaRequest(nil, &DeltaRequest{ID: 1, Session: 1,
		Add: [][2]int{{1 << 33, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	_, body, _, err = DecodeFrame(big)
	if err != nil {
		t.Fatal(err)
	}
	if err := ParseDeltaRequest(body, &req); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized endpoint: %v, want ErrBadFrame", err)
	}
}

// TestSendDeltaNeedsV4 pins the client-side version gate for delta frames.
func TestSendDeltaNeedsV4(t *testing.T) {
	cli, srv := net.Pipe()
	defer srv.Close()
	go func() {
		hello := make([]byte, HandshakeBytes)
		if _, err := io.ReadFull(srv, hello); err != nil {
			return
		}
		srv.Write(AppendHello(nil, 3)) // a v3 server: spans but no deltas
	}()
	c, err := NewClientConn(cli, time.Second)
	if err != nil {
		t.Fatalf("NewClientConn: %v", err)
	}
	defer c.Close()
	if c.ProtocolVersion() != 3 {
		t.Fatalf("negotiated v%d, want v3", c.ProtocolVersion())
	}
	err = c.SendDelta(&DeltaRequest{ID: 1, Session: 1, Add: [][2]int{{0, 2}}})
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("SendDelta on v3 session: %v, want ErrVersion", err)
	}
}

// General: the library's two extensions beyond the paper.
//
// Part 1 schedules *arbitrary* right-oriented sets (crossing spans, which
// the paper's well-nested algorithm excludes) via conflict coloring: a fast
// first-fit against an exact branch-and-bound optimum and the width lower
// bound.
//
// Part 2 prices the paper's "holding a connection is free" assumption: for
// recurring two-phase traffic it computes the hold-vs-drop energy crossover.
//
// Run with:
//
//	go run ./examples/general
package main

import (
	"fmt"
	"log"

	"cst"
)

func main() {
	part1()
	fmt.Println()
	part2()
}

func part1() {
	const n = 64
	tree, err := cst.NewTree(n)
	if err != nil {
		log.Fatal(err)
	}
	rng := cst.NewRand(17)

	fmt.Println("Part 1 — arbitrary (crossing) oriented sets via conflict coloring")
	fmt.Printf("%8s | %10s | %10s | %10s | %9s\n", "set", "width", "first-fit", "optimal", "conflicts")
	fmt.Println("--------------------------------------------------------------")
	for trial := 0; trial < 6; trial++ {
		set, err := cst.RandomOriented(rng, n, 14)
		if err != nil {
			log.Fatal(err)
		}
		width, err := set.Width(tree)
		if err != nil {
			log.Fatal(err)
		}
		graph, err := cst.Conflicts(tree, set)
		if err != nil {
			log.Fatal(err)
		}
		ff, err := cst.ScheduleFirstFit(tree, set)
		if err != nil {
			log.Fatal(err)
		}
		ex, _, err := cst.ExactIncumbent(cst.ScheduleExact(tree, set, 500000))
		if err != nil {
			log.Fatal(err)
		}
		if err := ex.Verify(tree); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d | %10d | %10d | %10d | %9d\n",
			trial, width, ff.NumRounds(), ex.NumRounds(), graph.Edges())
	}
	fmt.Println("(first-fit matches the optimum on typical draws; the width is the clique lower bound)")
}

func part2() {
	const n = 64
	tree, err := cst.NewTree(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Part 2 — what does 'holding is free' buy? (energy-model sensitivity)")

	// Two traffic phases in opposite halves of the machine, alternating for
	// `cycles` rounds. Holding keeps phase A's circuits up through phase B
	// (and vice versa); dropping rebuilds them on every recurrence.
	bus, err := cst.NewBus(n)
	if err != nil {
		log.Fatal(err)
	}
	program, err := cst.RandomBusProgram(cst.NewRand(5), bus, 30, 8, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cst.RunBusProgram(tree, bus, program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("30-cycle bus program: %d CST rounds, %d total units under the paper model\n",
		res.Rounds, res.Report.TotalUnits())
	fmt.Println("Under the extended model E = SetCost·changes + HoldCost·(connection·rounds),")
	fmt.Println("EXPERIMENTS.md E10 locates the HoldCost/SetCost crossover: below it the")
	fmt.Println("paper's hold-everything policy wins; above it drop-when-idle wins. For")
	fmt.Println("steadily recurring traffic the crossover approaches 1.0 — holding stays the")
	fmt.Println("right call unless holding a circuit costs as much per round as setting it up.")
}

// Powerstudy: the paper's headline contrast as a table. Sweeps the set
// width w and compares, at the hottest switch, the power-aware scheduler
// (O(1) configuration changes) against the prior ID-based approach (Θ(w)).
//
// Run with:
//
//	go run ./examples/powerstudy
package main

import (
	"fmt"
	"log"

	"cst"
)

func main() {
	const n = 512
	fmt.Printf("workload: split nested chains over %d PEs (every pair crosses the root)\n\n", n)
	fmt.Printf("%4s | %20s | %24s | %24s | %22s\n", "w", "PADR max units/switch",
		"alt-ID churn (stateful)", "rebuild cost (stateless)", "rounds (all schedulers)")
	fmt.Println(dashes(108))

	tree, err := cst.NewTree(n)
	if err != nil {
		log.Fatal(err)
	}
	for _, w := range []int{4, 8, 16, 32, 64, 128} {
		set, err := cst.SplitChain(n, w)
		if err != nil {
			log.Fatal(err)
		}

		// The power-aware scheduler: hold configurations, change O(1) times.
		padrRes, err := cst.Run(tree, set)
		if err != nil {
			log.Fatal(err)
		}

		// Prior work, reconstructed: schedule by communication ID in an
		// order that interleaves outer and inner pairs. Even with free
		// holds, the hottest switch flips its upward driver every round.
		altRes, err := cst.RunDepthID(tree, set, cst.Alternating, cst.Stateful)
		if err != nil {
			log.Fatal(err)
		}

		// Literal per-round reconfiguration: every connection re-billed.
		tornRes, err := cst.RunDepthID(tree, set, cst.OutermostFirst, cst.Stateless)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%4d | %20d | %24d | %24d | %22d\n",
			w,
			padrRes.Report.MaxUnits(),
			altRes.Report.MaxAlternations(),
			tornRes.Report.MaxUnits(),
			padrRes.Rounds)
	}
	fmt.Println()
	fmt.Println("Reading: the PADR column stays flat (Theorem 8: O(1) per switch);")
	fmt.Println("both baseline columns grow linearly with w (Θ(w)); every scheduler")
	fmt.Println("uses exactly w rounds on these chains (Theorem 5: time-optimal).")
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// SRGA: route 2D workloads on a Self-Reconfigurable Gate Array grid — the
// architecture that motivates the CST — using one circuit switched tree per
// row and per column and classical two-phase (row, then column) routing.
//
// Run with:
//
//	go run ./examples/srga
package main

import (
	"fmt"
	"log"

	"cst"
)

func main() {
	grid, err := cst.NewGrid(16, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SRGA grid: %dx%d PEs, one CST per row and per column\n\n", grid.Rows(), grid.Cols())

	fmt.Printf("%-14s | %6s | %10s | %10s | %11s | %15s\n",
		"workload", "comms", "row rounds", "col rounds", "wall rounds", "max units/switch")
	fmt.Println("---------------------------------------------------------------------------------")

	run := func(name string, comms []cst.Comm2D) {
		res, err := grid.Route(comms)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		maxUnits := res.RowPhase.MaxUnits
		if res.ColPhase.MaxUnits > maxUnits {
			maxUnits = res.ColPhase.MaxUnits
		}
		fmt.Printf("%-14s | %6d | %10d | %10d | %11d | %15d\n",
			name, len(comms), res.RowPhase.MaxRounds, res.ColPhase.MaxRounds,
			res.TotalMaxRounds(), maxUnits)
	}

	// Uniform shift: stays entirely inside the row trees.
	run("shift +5", cst.RowShift(grid, 5))

	// Matrix transpose: the classic two-phase stress test.
	transpose, err := cst.Transpose(grid)
	if err != nil {
		log.Fatal(err)
	}
	run("transpose", transpose)

	// Random permutations.
	rng := cst.NewRand(99)
	for i := 0; i < 3; i++ {
		run(fmt.Sprintf("permutation %d", i), cst.RandomPermutation(rng, grid))
	}

	fmt.Println()
	fmt.Println("Row and column trees run in parallel within a phase; 'wall rounds' is the")
	fmt.Println("slowest tree of the row phase plus the slowest of the column phase.")
}

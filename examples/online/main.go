// Online: run the power-aware scheduler against dynamically arriving
// traffic — the setting a deployed interconnect faces. Requests queue while
// the fabric is busy; each dispatch drains a maximal well-nested batch and
// runs it with the paper's algorithm over the shared crossbars.
//
// Run with:
//
//	go run ./examples/online
package main

import (
	"fmt"
	"log"

	"cst"
)

func main() {
	const n = 128
	fmt.Printf("online traffic on a %d-PE CST; dispatch threshold = 8 queued requests\n\n", n)
	fmt.Printf("%6s | %9s | %7s | %11s | %12s | %11s | %16s\n",
		"load", "submitted", "batches", "busy rounds", "mean latency", "max latency", "units/busy round")
	fmt.Println("----------------------------------------------------------------------------------------")

	for _, load := range []int{1, 2, 4, 8, 16} {
		sim, err := cst.NewOnline(n)
		if err != nil {
			log.Fatal(err)
		}
		rng := cst.NewRand(42)
		submitted := 0
		for step := 0; step < 300; step++ {
			submitted += sim.SubmitRandom(rng, load)
			if sim.QueueLen() >= 8 {
				if _, err := sim.Dispatch(); err != nil {
					log.Fatal(err)
				}
			} else {
				sim.Tick()
			}
		}
		if err := sim.Drain(); err != nil {
			log.Fatal(err)
		}
		stats := sim.Finish()
		if len(stats.Completed) != submitted {
			log.Fatalf("lost requests: %d of %d", len(stats.Completed), submitted)
		}
		unitsPerRound := 0.0
		if stats.Rounds > 0 {
			unitsPerRound = float64(stats.Report.TotalUnits()) / float64(stats.Rounds)
		}
		fmt.Printf("%6d | %9d | %7d | %11d | %12.2f | %11d | %16.2f\n",
			load, submitted, stats.Batches, stats.Rounds,
			stats.MeanLatency(), stats.MaxLatency(), unitsPerRound)
	}
	fmt.Println()
	fmt.Println("Every submitted request completes. Latency grows with load as batches")
	fmt.Println("queue up; the shared crossbars mean a request whose circuit is already")
	fmt.Println("configured from an earlier batch costs nothing to re-establish.")
}

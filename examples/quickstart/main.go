// Quickstart: schedule a well-nested communication set on a CST with the
// power-aware algorithm, verify the schedule, and read the power ledger.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cst"
)

func main() {
	// A communication set is a balanced parenthesis expression over the PE
	// line: '(' opens a communication at a source PE, ')' closes it at the
	// matching destination, '.' is an idle PE. This one has four
	// communications over 16 PEs, nested three deep.
	set, err := cst.Parse("((.)((.)..).)(.)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(set.Summary())
	fmt.Println()
	fmt.Print(cst.RenderSet(set))
	fmt.Println()

	// The CST has one leaf per PE.
	tree, err := cst.NewTree(set.N)
	if err != nil {
		log.Fatal(err)
	}

	// Run the paper's Configuration and Scheduling Algorithm. The schedule
	// takes exactly width(set) rounds — the optimum — and every switch makes
	// only O(1) configuration changes over the whole run.
	res, err := cst.Run(tree, set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("width %d, scheduled in %d rounds:\n", res.Width, res.Rounds)
	fmt.Print(res.Schedule.String())
	fmt.Println()

	// Verify against the topology alone: per-round link compatibility,
	// completeness, and the exact-width round count.
	if err := res.Schedule.VerifyOptimal(tree); err != nil {
		log.Fatal(err)
	}
	fmt.Println("schedule verified (compatible, complete, optimal)")

	// The power ledger (paper §2.3): one unit per established connection,
	// holding connections across rounds is free.
	fmt.Println(res.Report.Summary())
	fmt.Println()
	fmt.Println("hottest switches:")
	fmt.Print(res.Report.Table(3))
}

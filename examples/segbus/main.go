// Segbus: emulate a segmentable bus — the fundamental reconfigurable
// architecture the paper cites — on top of the CST. A multi-cycle bus
// program runs as a sequence of power-aware scheduling rounds over the same
// crossbars, so a steady communication pattern costs almost nothing after
// the first cycle.
//
// Run with:
//
//	go run ./examples/segbus
package main

import (
	"fmt"
	"log"

	"cst"
)

func main() {
	const n = 64

	tree, err := cst.NewTree(n)
	if err != nil {
		log.Fatal(err)
	}

	// A hand-built program first: split the bus into four 16-PE segments
	// and run the same neighbour transfer pattern for ten cycles.
	bus, err := cst.NewBus(n)
	if err != nil {
		log.Fatal(err)
	}
	for _, gap := range []int{15, 31, 47} {
		if err := bus.Split(gap); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("bus segments:", bus.Segments())

	steady := cst.BusCycle{Transfers: []cst.BusTransfer{
		{Writer: 0, Reader: 12},
		{Writer: 16, Reader: 28},
		{Writer: 44, Reader: 33}, // leftward transfer: handled by mirroring
		{Writer: 48, Reader: 60},
	}}
	program := make([]cst.BusCycle, 10)
	for i := range program {
		program[i] = steady
	}
	res, err := cst.RunBusProgram(tree, bus, program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady pattern: %d cycles, %d CST rounds, total power %d units, max %d/switch\n",
		res.Cycles, res.Rounds, res.Report.TotalUnits(), res.Report.MaxUnits())
	fmt.Println("  (after cycle 1 every circuit is already configured: later cycles are free)")
	fmt.Println()

	// A random program: each cycle re-splits the bus and draws fresh
	// transfers, so circuits genuinely change between cycles.
	randBus, err := cst.NewBus(n)
	if err != nil {
		log.Fatal(err)
	}
	randomProgram, err := cst.RandomBusProgram(cst.NewRand(7), randBus, 10, 8, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	res, err = cst.RunBusProgram(tree, randBus, randomProgram)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("random pattern: %d cycles, %d CST rounds, total power %d units, max %d/switch\n",
		res.Cycles, res.Rounds, res.Report.TotalUnits(), res.Report.MaxUnits())
	fmt.Println("  (every cycle is width <= 1 per orientation: at most 2 CST rounds per bus cycle)")
}

package cst_test

import (
	"strings"
	"testing"

	"cst"
)

// TestParseRejectsMalformedExpressions pins the parser's error paths: every
// malformed expression comes back as a descriptive error, never a panic and
// never a silently-repaired set.
func TestParseRejectsMalformedExpressions(t *testing.T) {
	cases := []struct {
		name, expr, wantSub string
	}{
		{"unbalanced-open", "(()", "unmatched '('"},
		{"unbalanced-close", "())", "unmatched ')'"},
		{"close-before-open", ")(", "unmatched ')'"},
		{"bad-rune", "(x)", "unexpected"},
		{"deep-unclosed", strings.Repeat("(", 12), "unmatched '('"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := cst.Parse(c.expr)
			if err == nil {
				t.Fatalf("Parse(%q) accepted a malformed expression: %v", c.expr, s)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("Parse(%q) error %q does not mention %q", c.expr, err, c.wantSub)
			}
		})
	}
}

// TestEnginesRejectMalformedSets pins the engine-level error paths: a
// malformed set (duplicate endpoints, out-of-range PEs, self loops, leaf
// mismatch, crossing pairs) is rejected with a descriptive error by BOTH
// the sequential engine and the concurrent fabric, and a rejection leaves
// no residue in the attached metrics registry — two consecutive rejections
// produce identical snapshots with every gauge at zero.
func TestEnginesRejectMalformedSets(t *testing.T) {
	tree, err := cst.NewTree(8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		set     *cst.Set
		wantSub string
	}{
		{"duplicate-source", cst.NewSet(8, cst.Comm{Src: 0, Dst: 3}, cst.Comm{Src: 0, Dst: 5}), "PE 0"},
		{"shared-endpoint", cst.NewSet(8, cst.Comm{Src: 0, Dst: 3}, cst.Comm{Src: 3, Dst: 5}), "PE 3"},
		{"out-of-range-dst", cst.NewSet(8, cst.Comm{Src: 0, Dst: 12}), "out of range"},
		{"negative-src", cst.NewSet(8, cst.Comm{Src: -1, Dst: 2}), "out of range"},
		{"self-loop", cst.NewSet(8, cst.Comm{Src: 2, Dst: 2}), "self loop"},
		{"leaf-mismatch", cst.NewSet(16, cst.Comm{Src: 0, Dst: 1}), "leaves"},
		{"crossing-pairs", cst.NewSet(8, cst.Comm{Src: 0, Dst: 2}, cst.Comm{Src: 1, Dst: 3}), "nested"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reg := cst.NewMetrics()

			if _, err := cst.Run(tree, c.set, cst.WithMetrics(reg)); err == nil {
				t.Fatal("sequential engine accepted a malformed set")
			} else if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("padr error %q does not mention %q", err, c.wantSub)
			}
			first := reg.Snapshot()

			if _, err := cst.Run(tree, c.set, cst.WithMetrics(reg)); err == nil {
				t.Fatal("sequential engine accepted a malformed set on retry")
			}
			assertRejectionResidue(t, "padr", first, reg.Snapshot())

			creg := cst.NewMetrics()
			if _, err := cst.RunConcurrent(tree, c.set, cst.WithConcurrentMetrics(creg)); err == nil {
				t.Fatal("concurrent fabric accepted a malformed set")
			}
			cfirst := creg.Snapshot()
			if _, err := cst.RunConcurrent(tree, c.set, cst.WithConcurrentMetrics(creg)); err == nil {
				t.Fatal("concurrent fabric accepted a malformed set on retry")
			}
			assertRejectionResidue(t, "sim", cfirst, creg.Snapshot())
		})
	}
}

// assertRejectionResidue compares the registry before and after a second
// identical rejection: the error counter may advance (rejections are
// counted), but no work counter, gauge, or histogram may move — a rejected
// run must not bill rounds, words, power, or latency it never performed.
func assertRejectionResidue(t *testing.T, engine string, first, second cst.MetricsSnapshot) {
	t.Helper()
	diff := second.Sub(first)
	for name, v := range diff.Counters {
		if strings.HasSuffix(name, "_errors_total") {
			continue
		}
		if v != 0 {
			t.Errorf("%s: counter %s advanced by %d on a rejected run", engine, name, v)
		}
	}
	for name, v := range second.Gauges {
		if v != 0 {
			t.Errorf("%s: gauge %s = %d after rejection, want 0", engine, name, v)
		}
	}
	for name, h := range diff.Histograms {
		if h.Count != 0 {
			t.Errorf("%s: histogram %s recorded %d samples on a rejected run", engine, name, h.Count)
		}
	}
}

// TestOnlineRejectsMalformedRequests pins the dispatcher's admission
// checks: a malformed request is refused at Submit and the queue state is
// untouched.
func TestOnlineRejectsMalformedRequests(t *testing.T) {
	s, err := cst.NewOnline(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []cst.Comm{
		{Src: -1, Dst: 2},
		{Src: 0, Dst: 8},
		{Src: 3, Dst: 3},
	} {
		if err := s.Submit(c); err == nil {
			t.Errorf("Submit(%v) accepted a malformed request", c)
		}
	}
	if s.QueueLen() != 0 {
		t.Fatalf("queue holds %d requests after rejected submits", s.QueueLen())
	}
}
